"""End-to-end and failure-path tests for the scenario server.

The contracts under test, straight from the service's guarantees:

* a warm-cache resubmission performs **zero** simulations and returns
  results byte-identical to a fresh ``SerialBackend`` run;
* duplicate in-flight scenarios coalesce onto one execution;
* the bounded admission queue rejects excess work with a structured
  ``overloaded`` error instead of queueing without limit;
* a worker process dying mid-shard is retried once, then surfaces a
  structured ``worker_crashed`` error without wedging the queue;
* malformed requests get structured ``invalid`` errors;
* a graceful drain finishes in-flight batches, rejects new scenarios
  and stops.
"""

import asyncio
import contextlib
import json
import multiprocessing
import os
import subprocess
import sys
import threading
import time

import pytest

from repro.experiments.parallel import SerialBackend
from repro.service import protocol
from repro.service.cache import (
    canonical_result_json,
    result_from_payload,
)
from repro.service.pool import ShardedPoolExecutor
from repro.service.server import ScenarioServer
from repro.workloads.base import RunResult
from repro.workloads.lockstress import LockStress

TPCH_PARAMS = {"parallel_degree": 2, "optimization_degree": 3,
               "queries": [3]}


def _sweep_message(**overrides):
    message = {"type": "sweep", "workload": "tpch",
               "params": dict(TPCH_PARAMS),
               "configs": ["4f-0s", "2f-2s/8"], "runs": 2,
               "base_seed": 100}
    message.update(overrides)
    return message


# ----------------------------------------------------------------------
# Async test harness (no pytest-asyncio in the image: asyncio.run)
# ----------------------------------------------------------------------
@contextlib.asynccontextmanager
async def running_server(**kwargs):
    kwargs.setdefault("host", "127.0.0.1")
    kwargs.setdefault("port", 0)
    server = ScenarioServer(**kwargs)
    await server.start()
    try:
        yield server
    finally:
        await server.aclose()


class Connection:
    """One NDJSON connection driven from the test's event loop."""

    def __init__(self, server):
        self.server = server
        self.reader = None
        self.writer = None

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            self.server.host, self.server.port)
        return self

    async def __aexit__(self, *exc_info):
        self.writer.close()
        with contextlib.suppress(ConnectionError, OSError):
            await self.writer.wait_closed()

    async def send(self, message):
        if isinstance(message, (bytes, bytearray)):
            self.writer.write(message)
        else:
            self.writer.write(protocol.encode(message))
        await self.writer.drain()

    async def read(self, timeout=30.0):
        line = await asyncio.wait_for(self.reader.readline(), timeout)
        assert line, "server closed the connection"
        return json.loads(line)

    async def rpc(self, message, timeout=30.0):
        await self.send(message)
        return await self.read(timeout)


async def one_rpc(server, message, timeout=30.0):
    async with Connection(server) as connection:
        return await connection.rpc(message, timeout)


class StubExecutor:
    """Deterministic executor double: optional gate, synthetic results."""

    def __init__(self, gate=None):
        self.gate = gate
        self.calls = []

    def run_tasks(self, tasks, trace_categories=None, coalesce=None):
        if self.gate is not None:
            assert self.gate.wait(30)
        self.calls.append([(t.config, t.seed) for t in tasks])
        return [RunResult(workload=t.workload.name, config=t.config,
                          seed=t.seed,
                          metrics={"throughput": float(t.seed)})
                for t in tasks]


# ----------------------------------------------------------------------
# The acceptance criterion: warm == zero simulations, byte-identical
# ----------------------------------------------------------------------
class TestColdWarmIdentity:
    def _roundtrip(self, tmp_path, extra):
        async def scenario():
            async with running_server(
                    cache_dir=str(tmp_path / "cache"),
                    executor=ShardedPoolExecutor(jobs=2)) as server:
                cold = await one_rpc(
                    server, _sweep_message(**extra), timeout=120)
                warm = await one_rpc(
                    server, _sweep_message(**extra), timeout=120)
                return cold, warm
        return asyncio.run(scenario())

    @pytest.mark.parametrize("extra", [
        {},
        {"coalesce": False},
    ], ids=["coalesce", "no-coalesce"])
    def test_warm_resubmission_is_free_and_identical(self, tmp_path,
                                                     extra):
        cold, warm = self._roundtrip(tmp_path, extra)
        assert cold["type"] == "result"
        assert cold["simulations_run"] == 4
        assert cold["cache_hits"] == 0
        assert warm["simulations_run"] == 0
        assert warm["cache_hits"] == 4
        assert json.dumps(cold["results"], sort_keys=True) == \
            json.dumps(warm["results"], sort_keys=True)

    def test_service_results_match_a_fresh_serial_backend(self,
                                                          tmp_path):
        cold, warm = self._roundtrip(tmp_path, {})
        request = protocol.parse_scenario(_sweep_message())
        local = SerialBackend().execute(request.tasks)
        for payload, reference in zip(warm["results"], local):
            assert canonical_result_json(
                result_from_payload(payload)) == \
                canonical_result_json(reference)

    def test_run_request_round_trips(self, tmp_path):
        async def scenario():
            async with running_server(
                    cache_dir=str(tmp_path / "cache"),
                    executor=ShardedPoolExecutor(jobs=1)) as server:
                return await one_rpc(
                    server,
                    {"type": "run", "workload": "tpch",
                     "params": dict(TPCH_PARAMS),
                     "config": "4f-0s", "seed": 100}, timeout=120)
        response = asyncio.run(scenario())
        assert response["tasks"] == 1
        assert response["results"][0]["config"] == "4f-0s"


# ----------------------------------------------------------------------
# Deduplication and admission control (stub executor, no simulation)
# ----------------------------------------------------------------------
class TestDedupAndAdmission:
    def test_duplicate_inflight_scenarios_coalesce(self):
        gate = threading.Event()
        stub = StubExecutor(gate=gate)

        async def scenario():
            async with running_server(executor=stub) as server:
                async with Connection(server) as first, \
                        Connection(server) as second:
                    await first.send(_sweep_message())
                    # Wait until the batch is registered in flight.
                    for _ in range(100):
                        if server._inflight:
                            break
                        await asyncio.sleep(0.01)
                    assert server._inflight
                    await second.send(_sweep_message())
                    # The duplicate must classify before the gate
                    # opens; poll the coalesce counter.
                    for _ in range(100):
                        if server.counters.get(
                                "service.inflight_coalesced") >= 4:
                            break
                        await asyncio.sleep(0.01)
                    gate.set()
                    a = await first.read()
                    b = await second.read()
                    return a, b
        a, b = asyncio.run(scenario())
        assert a["simulations_run"] == 4
        assert b["simulations_run"] == 0
        assert b["coalesced"] == 4
        assert json.dumps(a["results"], sort_keys=True) == \
            json.dumps(b["results"], sort_keys=True)
        assert len(stub.calls) == 1  # one execution for two requests

    def test_duplicates_within_one_request_simulate_once(self):
        stub = StubExecutor()

        async def scenario():
            async with running_server(executor=stub) as server:
                return await one_rpc(server, _sweep_message(
                    configs=["4f-0s", "4f-0s"], runs=1))
        response = asyncio.run(scenario())
        assert response["tasks"] == 2
        assert response["simulations_run"] == 1
        assert response["coalesced"] == 1
        assert response["results"][0] == response["results"][1]

    def test_overloaded_rejection_shape(self):
        gate = threading.Event()
        stub = StubExecutor(gate=gate)

        async def scenario():
            async with running_server(
                    executor=stub, max_pending_tasks=4) as server:
                async with Connection(server) as first, \
                        Connection(server) as second:
                    await first.send(_sweep_message())  # 4 tasks
                    for _ in range(100):
                        if server._pending_tasks == 4:
                            break
                        await asyncio.sleep(0.01)
                    rejected = await second.rpc(
                        _sweep_message(base_seed=900))
                    gate.set()
                    accepted = await first.read()
                    # After the batch retires, capacity is back.
                    retry = await second.rpc(
                        _sweep_message(base_seed=900))
                    return rejected, accepted, retry
        rejected, accepted, retry = asyncio.run(scenario())
        assert rejected["type"] == "error"
        assert rejected["error"] == "overloaded"
        assert rejected["pending_tasks"] == 4
        assert rejected["max_pending_tasks"] == 4
        assert rejected["messages"]
        assert accepted["simulations_run"] == 4
        assert retry["type"] == "result"  # queue was not wedged

    def test_cache_hits_bypass_admission_control(self, tmp_path):
        stub = StubExecutor()

        async def scenario():
            async with running_server(
                    executor=stub, max_pending_tasks=4,
                    cache_dir=str(tmp_path / "cache")) as server:
                first = await one_rpc(server, _sweep_message())
                # Fully cached: fresh=0 admits even at the bound.
                warm = await one_rpc(server, _sweep_message())
                return first, warm
        first, warm = asyncio.run(scenario())
        assert first["simulations_run"] == 4
        assert warm["simulations_run"] == 0
        assert warm["cache_hits"] == 4


# ----------------------------------------------------------------------
# Fault paths: malformed requests, worker death, graceful drain
# ----------------------------------------------------------------------
class TestFaultPaths:
    def test_malformed_json_gets_structured_error(self):
        async def scenario():
            async with running_server(
                    executor=StubExecutor()) as server:
                async with Connection(server) as connection:
                    bad = await connection.rpc(b"{not json\n")
                    # The connection survives a bad line.
                    pong = await connection.rpc({"type": "ping"})
                    return bad, pong
        bad, pong = asyncio.run(scenario())
        assert bad["type"] == "error" and bad["error"] == "invalid"
        assert "malformed JSON" in bad["messages"][0]
        assert pong["type"] == "pong"

    def test_invalid_scenario_lists_every_problem(self):
        async def scenario():
            async with running_server(
                    executor=StubExecutor()) as server:
                return await one_rpc(server, _sweep_message(
                    workload="nosuch", configs=["banana"], runs=0))
        response = asyncio.run(scenario())
        assert response["error"] == "invalid"
        assert len(response["messages"]) >= 3

    def test_executor_exception_is_an_internal_error(self):
        class Exploding:
            def run_tasks(self, tasks, trace_categories=None,
                          coalesce=None):
                raise RuntimeError("simulated engine bug")

        async def scenario():
            async with running_server(executor=Exploding()) as server:
                response = await one_rpc(server, _sweep_message())
                stats = await one_rpc(server, {"type": "stats"})
                return response, stats
        response, stats = asyncio.run(scenario())
        assert response["error"] == "internal"
        assert "simulated engine bug" in response["messages"][0]
        assert stats["pending_tasks"] == 0  # budget released

    def test_graceful_drain_state_machine(self):
        gate = threading.Event()
        stub = StubExecutor(gate=gate)

        async def scenario():
            async with running_server(executor=stub) as server:
                async with Connection(server) as busy, \
                        Connection(server) as control:
                    await busy.send(_sweep_message())
                    for _ in range(100):
                        if server._pending_tasks:
                            break
                        await asyncio.sleep(0.01)
                    ack = await control.rpc(
                        {"type": "shutdown", "drain": True})
                    assert server.draining
                    # New scenarios are rejected while draining...
                    refused = await control.rpc(
                        _sweep_message(base_seed=900))
                    # ...but the in-flight batch still completes.
                    gate.set()
                    finished = await busy.read()
                    await asyncio.wait_for(server._stopped.wait(), 30)
                    return ack, refused, finished
        ack, refused, finished = asyncio.run(scenario())
        assert ack["type"] == "shutdown" and ack["draining"] == 4
        assert refused["error"] == "shutting_down"
        assert finished["type"] == "result"
        assert finished["simulations_run"] == 4

    def test_metrics_streaming(self):
        async def scenario():
            async with running_server(
                    executor=StubExecutor()) as server:
                async with Connection(server) as subscriber:
                    subscribed = await subscriber.rpc(
                        {"type": "subscribe"})
                    assert subscribed["type"] == "subscribed"
                    await one_rpc(server, _sweep_message(
                        configs=["4f-0s"], runs=2))
                    records = [await subscriber.read(),
                               await subscriber.read()]
                    return records
        records = asyncio.run(scenario())
        assert all(r["type"] == "metrics" for r in records)
        seeds = sorted(r["record"]["seed"] for r in records)
        assert seeds == [100, 101]


# ----------------------------------------------------------------------
# Worker-process death on the real pool
# ----------------------------------------------------------------------
class CrashOnceLockStress(LockStress):
    """Dies (hard) on the first run, succeeds on the retry.

    The flag file records that the crash already happened; it lives on
    disk so the knowledge survives the worker process it kills.
    """

    def __init__(self, flag_path, **kwargs):
        super().__init__(**kwargs)
        self.flag_path = flag_path

    def run_once(self, config, seed=100, scheduler_factory=None):
        if not os.path.exists(self.flag_path):
            with open(self.flag_path, "w") as handle:
                handle.write("crashed\n")
            os._exit(17)
        return super().run_once(
            config, seed=seed, scheduler_factory=scheduler_factory)


class AlwaysCrashLockStress(LockStress):
    """Dies on every attempt: the poisoned-scenario case."""

    def run_once(self, config, seed=100, scheduler_factory=None):
        os._exit(17)


needs_fork = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="crash workloads are defined in the test module and rely "
           "on fork inheriting it")


@needs_fork
class TestWorkerDeath:
    def _run_direct(self, executor, workload, seeds=(100,)):
        """Drive the executor straight, like a server batch thread."""
        from repro.experiments.parallel import RunTask
        tasks = [RunTask(workload, "2f-2s/8", seed)
                 for seed in seeds]
        return executor.run_tasks(tasks)

    def test_shard_retried_once_after_worker_death(self, tmp_path):
        executor = ShardedPoolExecutor(jobs=1)
        try:
            workload = CrashOnceLockStress(
                str(tmp_path / "crashed.flag"),
                n_threads=2, duration=0.005)
            results = self._run_direct(executor, workload)
            assert len(results) == 1
            assert results[0].metrics["throughput"] > 0
            assert executor.counters.get(
                "service.pool.shard_retries") == 1
            assert executor.counters.get(
                "service.pool.rebuilds") == 1
        finally:
            executor.shutdown()

    def test_server_survives_a_poisoned_scenario(self, tmp_path):
        async def scenario():
            async with running_server(
                    executor=ShardedPoolExecutor(jobs=1),
                    cache_dir=str(tmp_path / "cache")) as server:
                # Poison the pool directly (the registry will not
                # build a crashing workload; inject the task).
                from repro.experiments.parallel import RunTask
                loop = asyncio.get_running_loop()
                poisoned = AlwaysCrashLockStress(
                    n_threads=2, duration=0.005)
                with pytest.raises(Exception) as excinfo:
                    await loop.run_in_executor(
                        None, server.executor.run_tasks,
                        [RunTask(poisoned, "2f-2s/8", 100)],
                        None, None)
                # The service keeps serving after the crash.
                healthy = await one_rpc(server, {
                    "type": "run", "workload": "lockstress",
                    "params": {"n_threads": 2, "duration": 0.005},
                    "config": "2f-2s/8", "seed": 100}, timeout=120)
                return excinfo.value, healthy
        error, healthy = asyncio.run(scenario())
        from repro.service.pool import WorkerCrashError
        assert isinstance(error, WorkerCrashError)
        assert len(error.tasks) == 1
        assert healthy["type"] == "result"
        assert healthy["simulations_run"] == 1

    def test_worker_crash_surfaces_as_structured_response(self):
        """End-to-end: a crashing batch answers ``worker_crashed``."""
        class CrashingExecutor(ShardedPoolExecutor):
            def __init__(self):
                super().__init__(jobs=1)

            def run_tasks(self, tasks, trace_categories=None,
                          coalesce=None):
                poisoned = [
                    type(t)(AlwaysCrashLockStress(
                        n_threads=2, duration=0.005),
                        t.config, t.seed, t.scheduler_factory)
                    for t in tasks]
                return super().run_tasks(
                    poisoned, trace_categories, coalesce)

        async def scenario():
            async with running_server(
                    executor=CrashingExecutor()) as server:
                response = await one_rpc(server, {
                    "type": "run", "workload": "lockstress",
                    "params": {"n_threads": 2, "duration": 0.005},
                    "config": "2f-2s/8", "seed": 100}, timeout=120)
                stats = await one_rpc(server, {"type": "stats"})
                return response, stats
        response, stats = asyncio.run(scenario())
        assert response["type"] == "error"
        assert response["error"] == "worker_crashed"
        assert response["tasks"] == 1
        assert stats["pending_tasks"] == 0  # queue not wedged
        assert stats["inflight_keys"] == 0


# ----------------------------------------------------------------------
# The CLI front end (serve subprocess + in-process submit)
# ----------------------------------------------------------------------
class TestServiceCli:
    @pytest.fixture
    def served(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")]))
        port_file = tmp_path / "port"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--port-file", str(port_file),
             "--cache-dir", str(tmp_path / "cache"), "--jobs", "2"],
            env=env, cwd=os.path.dirname(os.path.dirname(
                os.path.abspath(__file__))),
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
        deadline = time.monotonic() + 60
        while not port_file.exists():
            assert process.poll() is None, "server died on startup"
            assert time.monotonic() < deadline, "server never bound"
            time.sleep(0.1)
        try:
            yield port_file
        finally:
            if process.poll() is None:
                process.terminate()
            process.wait(timeout=30)

    def _submit(self, port_file, *extra):
        from repro.__main__ import main
        params = json.dumps(TPCH_PARAMS)
        return main(["submit", "--port-file", str(port_file),
                     "--workload", "tpch", "--params", params,
                     "--configs", "4f-0s,2f-2s/8", "--runs", "1",
                     *extra])

    def test_cold_warm_stats_shutdown(self, served, tmp_path,
                                      capsys):
        cold_json = tmp_path / "cold.json"
        warm_json = tmp_path / "warm.json"
        assert self._submit(served, "--json-out",
                            str(cold_json)) == 0
        # A cold submission is not fully cached: exit code 3.
        capsys.readouterr()
        assert self._submit(served, "--json-out", str(warm_json),
                            "--assert-cached") == 0
        out = capsys.readouterr().out
        assert "0 simulated" in out
        assert cold_json.read_bytes() == warm_json.read_bytes()
        from repro.__main__ import main
        assert main(["submit", "--port-file", str(served),
                     "--stats"]) == 0
        stats_out = capsys.readouterr().out
        assert "service.cache.hits" in stats_out
        assert main(["submit", "--port-file", str(served),
                     "--shutdown"]) == 0

    def test_assert_cached_fails_cold(self, served, capsys):
        assert self._submit(served, "--assert-cached") == 3
        assert "ASSERTION FAILED" in capsys.readouterr().err
