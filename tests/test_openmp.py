"""Tests for the OpenMP-style loop runtime."""

import pytest

from repro import System
from repro.errors import WorkloadError
from repro.faults import FaultSchedule, ThrottleEvent
from repro.runtime.openmp import (
    DEFAULT_STEAL_CHECK_CYCLES,
    Loop,
    LoopSchedule,
    OmpProgram,
    OmpTeam,
    Serial,
)
from repro.machine import DEFAULT_FREQUENCY_HZ

ITER_SECOND = DEFAULT_FREQUENCY_HZ  # cycles: 1 second on a fast core


def team_for(config, seed=0, **kwargs):
    system = System.build(config, seed=seed)
    kwargs.setdefault("dispatch_overhead_cycles", 0.0)
    kwargs.setdefault("fork_overhead_cycles", 0.0)
    return system, OmpTeam(system, **kwargs)


class TestLoopConstruction:
    def test_negative_iterations_rejected(self):
        with pytest.raises(WorkloadError):
            Loop(-1, 100)

    def test_bad_chunk_rejected(self):
        with pytest.raises(WorkloadError):
            Loop(10, 100, chunk=0)

    def test_total_cycles_scalar(self):
        assert Loop(10, 100).total_cycles() == 1000

    def test_total_cycles_callable(self):
        loop = Loop(4, lambda i: 10.0 * (i + 1))
        assert loop.total_cycles() == 100.0
        assert loop.range_cycles(1, 3) == 50.0

    def test_with_schedule_preserves_structure(self):
        loop = Loop(10, 100, nowait=True, name="hot")
        changed = loop.with_schedule(LoopSchedule.DYNAMIC, chunk=2)
        assert changed.schedule is LoopSchedule.DYNAMIC
        assert changed.chunk == 2
        assert changed.nowait and changed.name == "hot"

    def test_serial_fraction(self):
        program = OmpProgram([Serial(100), Loop(9, 100)])
        assert program.serial_fraction() == pytest.approx(0.1)

    def test_program_with_schedule_rewrites_all_loops(self):
        program = OmpProgram([Serial(10), Loop(4, 1), Loop(8, 1)])
        rewritten = program.with_schedule(LoopSchedule.DYNAMIC, chunk=1)
        kinds = [item.schedule for item in rewritten.items
                 if isinstance(item, Loop)]
        assert kinds == [LoopSchedule.DYNAMIC, LoopSchedule.DYNAMIC]


class TestStaticSchedule:
    def test_symmetric_machine_perfect_speedup(self):
        system, team = team_for("4f-0s")
        program = OmpProgram([Loop(4, ITER_SECOND)])
        elapsed = team.execute(program)
        assert elapsed == pytest.approx(1.0, rel=1e-6)

    def test_asymmetric_machine_limited_by_slowest_core(self):
        # Paper §3.5: "While all processors get equal work, they do not
        # have the same performance" — static is slowest-core bound.
        system, team = team_for("2f-2s/8")
        program = OmpProgram([Loop(4, ITER_SECOND)])
        elapsed = team.execute(program)
        assert elapsed == pytest.approx(8.0, rel=1e-6)

    def test_static_matches_all_slow_machine(self):
        # 2f-2s/8 static runtime equals 0f-4s/8 (the Figure 8a shape).
        _, team_asym = team_for("2f-2s/8", seed=1)
        _, team_slow = team_for("0f-4s/8", seed=2)
        program = OmpProgram([Loop(8, ITER_SECOND / 2)])
        asym = team_asym.execute(program)
        slow = team_slow.execute(program)
        assert asym == pytest.approx(slow, rel=1e-6)

    def test_ammp_style_remainder_split(self):
        # 6 iterations over 4 threads: threads 0,1 (fast cores) take 2
        # each, threads 2,3 (slow cores) one each — the paper's
        # observed "lucky" ammp mapping (§3.5).
        system, team = team_for("2f-2s/8")
        program = OmpProgram([Loop(6, ITER_SECOND)])
        elapsed = team.execute(program)
        # fast cores: 2 iters at 1s = 2s; slow cores: 1 iter at 8s.
        assert elapsed == pytest.approx(8.0, rel=1e-6)

    def test_zero_iteration_loop_is_instant(self):
        system, team = team_for("4f-0s")
        elapsed = team.execute(OmpProgram([Loop(0, ITER_SECOND)]))
        assert elapsed == pytest.approx(0.0)


class TestDynamicSchedule:
    def test_work_flows_to_fast_cores(self):
        # Dynamic chunks let the machine run at ~total compute power:
        # 64 iterations of 0.125s on 2f-2s/8 (power 2.25) ≈ 3.6s,
        # far below the 8-second static bound.
        system, team = team_for("2f-2s/8")
        program = OmpProgram([
            Loop(64, ITER_SECOND / 8, schedule=LoopSchedule.DYNAMIC,
                 chunk=1)])
        elapsed = team.execute(program)
        ideal = 64 * 0.125 / 2.25
        assert elapsed < 0.75 * 8.0  # decisively beats static
        assert elapsed == pytest.approx(ideal, rel=0.35)

    def test_chunks_taken_proportional_to_speed(self):
        system, team = team_for("2f-2s/8")
        program = OmpProgram([
            Loop(72, ITER_SECOND / 16, schedule=LoopSchedule.DYNAMIC,
                 chunk=1)])
        team.execute(program)
        fast = team.chunks_taken[0] + team.chunks_taken[1]
        slow = team.chunks_taken[2] + team.chunks_taken[3]
        assert fast > 4 * slow

    def test_dispatch_overhead_charged_per_chunk(self):
        system = System.build("4f-0s")
        team = OmpTeam(system, dispatch_overhead_cycles=ITER_SECOND / 100,
                       fork_overhead_cycles=0.0)
        program = OmpProgram([
            Loop(100, 0.0, schedule=LoopSchedule.DYNAMIC, chunk=1)])
        elapsed = team.execute(program)
        assert elapsed > 0.2  # 100 grabs * 10ms spread over 4 threads

    def test_larger_chunks_reduce_overhead(self):
        def run(chunk):
            system = System.build("4f-0s")
            team = OmpTeam(system,
                           dispatch_overhead_cycles=ITER_SECOND / 100,
                           fork_overhead_cycles=0.0)
            program = OmpProgram([
                Loop(128, ITER_SECOND / 1000,
                     schedule=LoopSchedule.DYNAMIC, chunk=chunk)])
            return team.execute(program)
        assert run(16) < run(1)


class TestGuidedSchedule:
    def test_guided_beats_static_on_asymmetric(self):
        program = OmpProgram([
            Loop(64, ITER_SECOND / 8, schedule=LoopSchedule.GUIDED)])
        _, static_team = team_for("2f-2s/8", seed=1)
        static_elapsed = static_team.execute(
            program.with_schedule(LoopSchedule.STATIC))
        _, guided_team = team_for("2f-2s/8", seed=1)
        guided_elapsed = guided_team.execute(program)
        assert guided_elapsed < static_elapsed

    def test_guided_chunks_shrink(self):
        system, team = team_for("4f-0s")
        program = OmpProgram([
            Loop(256, ITER_SECOND / 1000, schedule=LoopSchedule.GUIDED)])
        team.execute(program)
        # Guided grabs far fewer chunks than iterations.
        assert 4 <= sum(team.chunks_taken) < 256

    def test_guided_tail_hurts_on_asymmetric(self):
        # A slow core grabbing a same-size chunk near the end strands
        # the fast cores at the barrier: guided is worse than dynamic
        # with small chunks on a strongly asymmetric machine.
        def run(schedule, chunk=None):
            system, team = team_for("1f-3s/8", seed=3)
            program = OmpProgram([
                Loop(64, ITER_SECOND / 8, schedule=schedule, chunk=chunk)])
            return team.execute(program)
        assert run(LoopSchedule.DYNAMIC, chunk=1) <= \
            run(LoopSchedule.GUIDED) + 1e-9


class TestSerialSections:
    def test_serial_runs_on_master_core(self):
        # Master (thread 0) is pinned to core 0, which is fast on any
        # nf>0 machine: serial time is 1s, not 8s.
        system, team = team_for("1f-3s/8")
        program = OmpProgram([Serial(ITER_SECOND)])
        elapsed = team.execute(program)
        assert elapsed == pytest.approx(1.0, rel=1e-6)

    def test_serial_orders_between_loops(self):
        system, team = team_for("4f-0s")
        program = OmpProgram([
            Loop(4, ITER_SECOND / 4),
            Serial(ITER_SECOND / 2),
            Loop(4, ITER_SECOND / 4),
        ])
        elapsed = team.execute(program)
        assert elapsed == pytest.approx(0.25 + 0.5 + 0.25, rel=1e-6)

    def test_fast_core_accelerates_serial_portion(self):
        # The paper's point 3: a 1f-3s/8 machine beats 0f-4s/8 chiefly
        # on serial sections.
        program = OmpProgram([
            Serial(ITER_SECOND),
            Loop(32, ITER_SECOND / 8, schedule=LoopSchedule.DYNAMIC,
                 chunk=1),
        ])
        _, asym = team_for("1f-3s/8", seed=1)
        asym_time = asym.execute(program)
        _, slow = team_for("0f-4s/8", seed=1)
        slow_time = slow.execute(program)
        assert asym_time < slow_time
        # Serial alone accounts for a 7-second gap.
        assert slow_time - asym_time > 5.0

    def test_nowait_lets_fast_threads_run_ahead(self):
        # Two short-body loops with nowait on the first: fast threads
        # flow into the second loop; total is below the sum of two
        # slowest-bound loops when work is grabbed dynamically after.
        def run(nowait):
            system, team = team_for("2f-2s/8", seed=2)
            program = OmpProgram([
                Loop(4, ITER_SECOND / 4, nowait=nowait),
                Loop(32, ITER_SECOND / 16,
                     schedule=LoopSchedule.DYNAMIC, chunk=1),
            ])
            return team.execute(program)
        assert run(True) < run(False)


class TestStaticWeighted:
    def test_matches_static_on_symmetric_machine(self):
        program = OmpProgram([Loop(8, ITER_SECOND / 4)])
        _, static_team = team_for("4f-0s", seed=1)
        _, weighted_team = team_for("4f-0s", seed=1)
        static = static_team.execute(
            program.with_schedule(LoopSchedule.STATIC))
        weighted = weighted_team.execute(
            program.with_schedule(LoopSchedule.STATIC_WEIGHTED))
        assert weighted == pytest.approx(static, rel=1e-9)

    def test_split_proportional_to_speed(self):
        # 2f-2s/8 (rates 1, 1, 1/8, 1/8): of 36 iterations the fast
        # threads get 16 each and the slow threads 2 each, so every
        # member finishes its share in the same wall time.
        system, team = team_for("2f-2s/8")
        program = OmpProgram([
            Loop(36, ITER_SECOND / 16,
                 schedule=LoopSchedule.STATIC_WEIGHTED)])
        elapsed = team.execute(program)
        assert elapsed == pytest.approx(1.0, rel=1e-6)

    def test_rereads_speed_at_loop_entry(self):
        # A permanent throttle landing between two loops changes the
        # second loop's split: with core 0 slowed to 1/8 the fast
        # share moves to cores 1..3.
        def run(throttled):
            system, team = team_for("4f-0s", seed=1)
            if throttled:
                FaultSchedule([ThrottleEvent(
                    time=0.0, core=0,
                    duty_cycle=1 / 8)]).install(system)
            program = OmpProgram([
                Loop(32, ITER_SECOND / 8,
                     schedule=LoopSchedule.STATIC_WEIGHTED)])
            return team.execute(program)
        clean = run(False)
        throttled = run(True)
        # Weighted split adapts: runtime grows by ~(32/31)*4/3, far
        # less than the 8x collapse an equal split would suffer.
        assert throttled < 2.0 * clean

    def test_straggler_cycles_counter_small(self):
        system, team = team_for("2f-2s/8")
        program = OmpProgram([
            Loop(36, ITER_SECOND / 16,
                 schedule=LoopSchedule.STATIC_WEIGHTED)])
        team.execute(program)
        straggler = system.counters.get("omp.straggler_cycles")
        # The proportional split leaves no straggler tail here.
        assert straggler < ITER_SECOND / 100


class TestStealing:
    def test_beats_static_on_asymmetric(self):
        program = OmpProgram([Loop(64, ITER_SECOND / 8)])
        _, static_team = team_for("2f-2s/8", seed=1)
        static = static_team.execute(program)
        _, stealing_team = team_for("2f-2s/8", seed=1)
        stealing = stealing_team.execute(
            program.with_schedule(LoopSchedule.STEALING))
        assert stealing < 0.5 * static

    def test_steal_attempts_pay_cycles(self):
        # Unbalanced callable loop: all the work sits in thread 0's
        # range, so every other thread must steal to contribute.
        system, team = team_for("4f-0s", seed=1)
        program = OmpProgram([
            Loop(64, lambda i: ITER_SECOND / 8 if i < 16 else 1.0,
                 schedule=LoopSchedule.STEALING, chunk=2)])
        team.execute(program)
        counters = system.counters.as_dict()
        steals = sum(value for name, value in counters.items()
                     if name.startswith("omp.steals."))
        assert steals > 0
        attempts = steals + counters.get("omp.steal_failures", 0.0)
        assert counters["omp.steal_cycles"] == pytest.approx(
            attempts * DEFAULT_STEAL_CHECK_CYCLES)

    def test_fast_thieves_prefer_slow_victims(self):
        # Under a throttle storm the entry-time split goes stale and
        # fast cores drain the slowed members' deques.
        system, team = team_for("2f-2s/8", seed=1)
        FaultSchedule.throttle_storm(
            seed=3, duration=2.0, cores=range(4),
            events_per_second=25.0,
            recovery_mean=0.02).install(system)
        program = OmpProgram([
            Loop(96, ITER_SECOND / 24,
                 schedule=LoopSchedule.STEALING, chunk=1)])
        team.execute(program)
        counters = system.counters.as_dict()
        fast_from_slow = counters.get("omp.steals.fast_from_slow", 0.0)
        slow_from_fast = counters.get("omp.steals.slow_from_fast", 0.0)
        assert fast_from_slow + slow_from_fast + counters.get(
            "omp.steals.same_class", 0.0) > 0
        assert fast_from_slow >= slow_from_fast

    def test_explicit_chunk_respected(self):
        system, team = team_for("4f-0s")
        program = OmpProgram([
            Loop(32, ITER_SECOND / 100,
                 schedule=LoopSchedule.STEALING, chunk=4)])
        team.execute(program)
        assert system.counters.get("omp.chunks_dispatched") == 8.0

    def test_zero_iteration_loop_is_instant(self):
        system, team = team_for("2f-2s/8")
        elapsed = team.execute(OmpProgram([
            Loop(0, ITER_SECOND, schedule=LoopSchedule.STEALING)]))
        assert elapsed == pytest.approx(0.0)


class TestDispatchAccounting:
    def test_dispatch_cycles_booked_per_grab(self):
        system = System.build("4f-0s")
        team = OmpTeam(system, dispatch_overhead_cycles=1000.0,
                       fork_overhead_cycles=0.0)
        program = OmpProgram([
            Loop(40, ITER_SECOND / 1000,
                 schedule=LoopSchedule.DYNAMIC, chunk=1)])
        team.execute(program)
        assert system.counters.get("omp.chunks_dispatched") == 40.0
        assert system.counters.get("omp.dispatch_cycles") == \
            pytest.approx(40 * 1000.0)

    def test_zero_overhead_books_no_dispatch_cycles(self):
        system, team = team_for("4f-0s")
        program = OmpProgram([
            Loop(8, ITER_SECOND / 100,
                 schedule=LoopSchedule.DYNAMIC, chunk=1)])
        team.execute(program)
        assert "omp.dispatch_cycles" not in system.counters.as_dict()

    def test_dispatch_cycles_conserved(self):
        from tests.harness import assert_conservation
        system = System.build("2f-2s/8")
        team = OmpTeam(system)
        program = OmpProgram([
            Loop(64, ITER_SECOND / 32,
                 schedule=LoopSchedule.GUIDED)])
        team.execute(program)
        assert system.counters.get("omp.dispatch_cycles") > 0
        assert_conservation(system.run_metrics())


class TestFig13Recovery:
    def test_stealing_recovers_static_asymmetry_gap(self):
        # The PR's acceptance bar, on a trimmed fig13 sweep: stealing
        # wins back >= 70% of the symmetric-vs-asymmetric makespan gap
        # static leaves on 2f-2s/8 (measured: ~89%).
        from repro.experiments.figures import fig13_omp_scheduling

        data = fig13_omp_scheduling.run(
            configs=("4f-0s", "2f-2s/8"),
            policies=("static", "stealing"), runs=1)
        recovery = fig13_omp_scheduling.recovered_fraction(data)
        assert recovery >= fig13_omp_scheduling.RECOVERY_BAR
        assert fig13_omp_scheduling.recovered_fraction(
            data, mode="storm") > 0.5


class TestTeamConfiguration:
    def test_team_size_defaults_to_core_count(self):
        system = System.build("4f-0s")
        assert OmpTeam(system).n_threads == 4

    def test_invalid_team_size_rejected(self):
        system = System.build("4f-0s")
        with pytest.raises(WorkloadError):
            OmpTeam(system, n_threads=0)

    def test_execution_is_deterministic(self):
        def run():
            system, team = team_for("2f-2s/4", seed=9)
            program = OmpProgram([
                Loop(48, ITER_SECOND / 12,
                     schedule=LoopSchedule.DYNAMIC, chunk=2),
                Serial(ITER_SECOND / 10),
                Loop(16, ITER_SECOND / 8),
            ])
            return team.execute(program)
        assert run() == run()

    def test_pinned_team_is_seed_independent(self):
        # Pinning removes all placement randomness: SPEC OMP stability.
        results = {
            round(team_for("2f-2s/8", seed=seed)[1].execute(
                OmpProgram([Loop(8, ITER_SECOND / 4)])), 9)
            for seed in range(5)
        }
        assert len(results) == 1
