"""Unit tests of the lock-primitive layer (DESIGN.md §11).

Covers the taxonomy in :mod:`repro.kernel.sync` — blocking FIFO,
test-and-set spin, MCS-queued spin and the asymmetry-aware mutex —
plus the per-kernel naming of anonymous sync objects, the ``lock.*``
observability counters and the interaction with fault injection.
"""

import pytest

from repro import System
from repro.errors import SchedulingError
from repro.faults import FaultSchedule, ThrottleEvent
from repro.kernel import (
    AsymmetryAwareScheduler,
    Barrier,
    CondVar,
    Compute,
    Lock,
    Mutex,
    Semaphore,
    SimThread,
    ThreadState,
    Unlock,
    Wait,
)
from repro.kernel.sync import (
    LOCK_KINDS,
    AsymMutex,
    MCSMutex,
    SpinMutex,
    make_lock,
)
from repro.workloads.lockstress import LockStress

from tests.harness import assert_conservation


def locker_body(lock, grants, label, critical=2e5, outside=1e5,
                iterations=1, requests=None):
    """Standard worker: outside work, then lock/critical/unlock.

    Appends ``label`` to ``requests`` immediately before issuing the
    Lock (the kernel executes it in the same scheduling step, so the
    list order is the lock-request order) and to ``grants`` once the
    acquire completes.
    """
    for _ in range(iterations):
        if outside > 0:
            yield Compute(outside)
        if requests is not None:
            requests.append(label)
        yield Lock(lock)
        grants.append(label)
        yield Compute(critical)
        yield Unlock(lock)


def run_population(lock, n_threads=6, config="2f-2s/8", seed=3,
                   scheduler=None, iterations=2, requests=None,
                   **body_kw):
    """Spawn ``n_threads`` lockers; return (system, grant order)."""
    system = System.build(config, seed=seed, scheduler=scheduler)
    grants = []
    for index in range(n_threads):
        system.kernel.spawn(SimThread(
            f"w{index}",
            locker_body(lock, grants, index, iterations=iterations,
                        requests=requests,
                        # Stagger arrivals so the queue forms in a
                        # known order.
                        outside=1e5 * (index + 1), **body_kw)))
    system.run()
    return system, grants


class TestMakeLock:
    def test_kinds_map_to_classes(self):
        assert type(make_lock("fifo")) is Mutex
        assert type(make_lock("spin")) is SpinMutex
        assert type(make_lock("mcs")) is MCSMutex
        assert type(make_lock("asym")) is AsymMutex

    def test_registry_is_complete(self):
        for kind in LOCK_KINDS:
            assert make_lock(kind).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(SchedulingError, match="unknown lock kind"):
            make_lock("ticket")

    def test_spin_check_cycles_must_be_positive(self):
        with pytest.raises(SchedulingError):
            SpinMutex(spin_check_cycles=0)

    def test_asym_bypass_cap_must_be_positive(self):
        with pytest.raises(SchedulingError):
            AsymMutex(max_bypass=0)


class TestPerKernelNaming:
    """Anonymous sync objects get kernel-scoped names.

    Regression: the counters used to be class-level, so every fresh
    ``System`` inherited whatever the previous simulations had already
    consumed — run order changed object names (and with them traces
    and deadlock reports).
    """

    def test_fresh_systems_reuse_the_same_names(self):
        names = []
        for seed in (1, 2):
            lock = Mutex()
            system, _ = run_population(lock, n_threads=2, seed=seed)
            names.append(lock.name)
        assert names == ["mutex-1", "mutex-1"]

    def test_names_follow_simulation_order(self):
        system = System.build("4f-0s", seed=0)
        first, second = Mutex(), Mutex()

        def body():
            # ``second`` is touched first, so it gets the first name.
            yield Lock(second)
            yield Unlock(second)
            yield Lock(first)
            yield Unlock(first)

        system.kernel.spawn(SimThread("t", body()))
        system.run()
        assert second.name == "mutex-1"
        assert first.name == "mutex-2"

    def test_explicit_names_are_kept(self):
        lock = Mutex("txlog")
        run_population(lock, n_threads=2)
        assert lock.name == "txlog"

    def test_other_sync_kinds_have_scoped_prefixes(self):
        system = System.build("4f-0s", seed=0)
        barrier = Barrier(2)
        cond = CondVar()
        mutex = Mutex()
        sem = Semaphore(0)
        assert barrier.name == ""
        assert cond._auto_prefix == "cond"
        assert sem._auto_prefix == "sem"
        assert mutex._auto_prefix == "mutex"
        assert barrier._auto_prefix == "barrier"


class TestHandoffOrder:
    def test_fifo_grants_in_arrival_order(self):
        lock = make_lock("fifo")
        requests = []
        _, grants = run_population(lock, config="4f-0s", iterations=3,
                                   requests=requests)
        assert grants == requests

    def test_mcs_is_fifo_despite_spinning(self):
        lock = make_lock("mcs")
        requests = []
        _, grants = run_population(lock, config="4f-0s", n_threads=4,
                                   iterations=3, requests=requests)
        assert grants == requests

    def test_spin_lock_allows_barging(self):
        """A fresh arrival may take a free test-and-set lock even
        while earlier waiters are still mid-spin-burst."""
        lock = make_lock("spin", spin_check_cycles=5e5)
        system = System.build("4f-0s", seed=0)
        grants = []
        system.kernel.spawn(SimThread(
            "holder", locker_body(lock, grants, "holder",
                                  critical=1e6, outside=0)))
        system.kernel.spawn(SimThread(
            "spinner", locker_body(lock, grants, "spinner",
                                   critical=1e5, outside=1e5)))
        # Arrives just after the holder releases, while the spinner's
        # long re-check burst is still draining: barges in.
        system.kernel.spawn(SimThread(
            "barger", locker_body(lock, grants, "barger",
                                  critical=1e5, outside=1.05e6)))
        system.run()
        assert grants == ["holder", "barger", "spinner"]
        assert lock.owner is None

    def test_relock_raises(self):
        lock = make_lock("fifo")
        system = System.build("4f-0s", seed=0)

        def body():
            yield Lock(lock)
            yield Lock(lock)

        system.kernel.spawn(SimThread("t", body()))
        with pytest.raises(SchedulingError, match="re-locking"):
            system.run()

    def test_unlock_by_non_owner_raises(self):
        lock = make_lock("fifo")
        system = System.build("4f-0s", seed=0)

        def body():
            yield Unlock(lock)

        system.kernel.spawn(SimThread("t", body()))
        with pytest.raises(SchedulingError, match="unlocking"):
            system.run()

    def test_condvar_rejects_spin_mutex(self):
        lock = make_lock("spin")
        cond = CondVar()
        system = System.build("4f-0s", seed=0)

        def body():
            yield Lock(lock)
            yield Wait(cond, lock)

        system.kernel.spawn(SimThread("t", body()))
        with pytest.raises(SchedulingError, match="blocking mutex"):
            system.run()


class TestAsymMutex:
    def test_handoff_prefers_fast_core_waiters(self):
        """On the asymmetric machine the asym lock funnels handoffs
        towards fast-core waiters; FIFO spreads them by arrival."""
        asym = make_lock("asym", migrate=False)
        system, _ = run_population(asym, n_threads=8, iterations=4)
        counters = system.run_metrics().counters
        to_fast = counters.get("lock.handoffs.fast_to_fast", 0.0) \
            + counters.get("lock.handoffs.slow_to_fast", 0.0)
        to_slow = counters.get("lock.handoffs.fast_to_slow", 0.0) \
            + counters.get("lock.handoffs.slow_to_slow", 0.0)
        assert to_fast > to_slow

    def test_bypass_cap_bounds_skips(self):
        """No waiter is ever bypassed more than ``max_bypass`` times
        in a row; everyone finishes."""
        asym = make_lock("asym", max_bypass=2, migrate=False)
        system, grants = run_population(asym, n_threads=8,
                                        iterations=3)
        for thread in system.kernel.threads:
            assert thread.state is ThreadState.TERMINATED
            assert thread.lock_bypasses <= 2
        assert len(grants) == 8 * 3

    def test_migration_books_counter(self):
        asym = make_lock("asym", migrate=True)
        system, _ = run_population(asym, n_threads=8, iterations=4)
        migrations = system.run_metrics().counters.get(
            "lock.crit_migrations")
        assert migrations is not None and migrations > 0

    def test_migrate_false_never_migrates(self):
        asym = make_lock("asym", migrate=False)
        system, _ = run_population(asym, n_threads=8, iterations=4)
        assert system.run_metrics().counters.get(
            "lock.crit_migrations") is None


class TestCounters:
    def test_acquisitions_and_contention_books(self):
        lock = make_lock("fifo")
        system, grants = run_population(lock, iterations=2)
        counters = system.run_metrics().counters
        assert counters.get("lock.acquisitions") == len(grants) \
            == lock.acquisitions
        assert counters.get("lock.contended") == lock.contention_count
        assert counters.get("lock.max_queue_depth") \
            == float(lock.max_queue_depth)

    def test_handoffs_bounded_by_acquisitions(self):
        lock = make_lock("fifo")
        system, _ = run_population(lock, iterations=2)
        counters = system.run_metrics().counters
        handoffs = sum(value for name, value in counters.items()
                       if name.startswith("lock.handoffs."))
        assert 0 < handoffs <= counters.get("lock.acquisitions")

    def test_spin_cycles_conservation(self):
        """Spin-wait cycles are booked and stay within busy cycles."""
        result = LockStress(n_threads=6, lock_kind="spin",
                            duration=0.2).run_once("2f-2s/8", seed=3)
        metrics = result.run_metrics
        assert_conservation(metrics)
        spin = metrics.counters.get("lock.spin_cycles")
        assert spin is not None and spin > 0
        busy = sum(core.busy_cycles for core in metrics.cores)
        assert spin <= busy

    def test_blocking_locks_book_no_spin_cycles(self):
        result = LockStress(n_threads=6, lock_kind="fifo",
                            duration=0.2).run_once("2f-2s/8", seed=3)
        assert result.run_metrics.counters.get(
            "lock.spin_cycles") is None


class TestTracing:
    def test_block_spans_carry_holder_details(self):
        lock = make_lock("fifo", "hot")
        system = System.build("2f-2s/8", seed=3)
        system.sim.tracer.enable("block")
        grants = []
        for index in range(4):
            system.kernel.spawn(SimThread(
                f"w{index}", locker_body(lock, grants, index,
                                         critical=5e5,
                                         outside=1e5 * (index + 1))))
        system.run()
        waits = [span for span in system.sim.tracer.spans("block")
                 if span.name == "lock hot"]
        assert waits, "contended FIFO acquire must open a block span"
        for span in waits:
            details = dict(span.details)
            assert details["holder"].startswith("w")
            assert details["holder_class"] in ("fast", "slow")


class TestFaultInterop:
    def test_throttled_holder_mid_critical_section(self):
        """A throttle landing on the holder's core mid-critical-
        section re-splits the slice and the books stay exact."""
        for kind in LOCK_KINDS:
            lock = make_lock(kind)
            system = System.build("2f-2s/8", seed=3)
            FaultSchedule([
                ThrottleEvent(0.001, 0, 0.25, duration=0.01),
                ThrottleEvent(0.004, 1, 0.125, duration=0.02),
            ], label="holder-throttle").install(system)
            grants = []
            for index in range(6):
                system.kernel.spawn(SimThread(
                    f"w{index}",
                    locker_body(lock, grants, index, critical=2e6,
                                outside=1e5 * (index + 1),
                                iterations=2)))
            system.run()
            assert len(grants) == 12, kind
            assert_conservation(system.run_metrics())

    def test_lock_storm_conservation_all_kinds(self):
        for kind in LOCK_KINDS:
            workload = LockStress(n_threads=8, lock_kind=kind,
                                  duration=0.2).with_faults(
                FaultSchedule.throttle_storm(
                    seed=7, duration=0.2, cores=range(4)))
            result = workload.run_once("2f-2s/8", seed=7)
            assert_conservation(result.run_metrics)
            assert result.metric("sections") > 0


class TestSchedulerInterplay:
    def test_asym_scheduler_runs_every_kind(self):
        for kind in LOCK_KINDS:
            result = LockStress(n_threads=6, lock_kind=kind,
                                duration=0.1).run_once(
                "1f-3s/8", seed=5,
                scheduler_factory=AsymmetryAwareScheduler)
            assert result.metric("sections") > 0
            assert_conservation(result.run_metrics)

    def test_lockstress_validates_inputs(self):
        with pytest.raises(ValueError):
            LockStress(n_threads=0)
        with pytest.raises(ValueError):
            LockStress(lock_kind="ticket")
        with pytest.raises(ValueError):
            LockStress(duration=0.0)
