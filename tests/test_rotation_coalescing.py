"""Rotation-level coalescing: contended byte-identity (DESIGN.md §10).

PR 5's macro slices only engage on uncontended cores; the rotation
macro extends the closed form to a full round-robin rotation of
CPU-bound threads, which is where the paper's contended workloads
(SPECjbb, DB2, web servers) spend their time.  The contract is the
same observational equivalence as :mod:`tests.test_coalescing`, held
down here on contended scenarios:

* a panel over the nine machine configurations × both schedulers ×
  (clean | golden fault storm) on a runqueue-heavy scenario;
* the engagement bound the contended benchmark gates on (a fully
  pinned scenario where rotations replace ≥ 5x the events);
* hypothesis property tests: random wakeup times and random throttle
  storms landing inside rotation windows must re-split to exact
  sliced state;
* the ``coalesce.macro_fallback`` regression counter stays zero on
  every standard configuration.

Rotation macros refuse to arm while the ``"sched"`` trace category is
active (per-dispatch records cannot be batched), so these tests trace
``("exec", "block", "faults")`` — the categories whose records the
rotation catch-up reproduces in closed form.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest
from hypothesis import given, settings, strategies as st

from repro import System
from repro.faults import FaultSchedule
from repro.kernel import (
    AsymmetryAwareScheduler,
    Compute,
    SimThread,
    SymmetricScheduler,
)
from repro.kernel.instructions import Sleep
from repro.machine.topology import STANDARD_CONFIG_LABELS
from repro.sim.trace_export import TraceData, chrome_trace, trace_to_json

from tests.harness import (
    assert_conservation,
    canonical_json,
    golden_fault_schedule,
)

SCHEDULERS = {
    "stock": SymmetricScheduler,
    "asym": AsymmetryAwareScheduler,
}

#: Rotation-compatible trace categories (everything but "sched").
ROTATION_TRACE = ("exec", "block", "faults")


def _contended_threads(kernel) -> None:
    """A runqueue-heavy scenario touching every rotation regime.

    Twelve staggered spinners keep every core's runqueue deep enough
    for rotations (and leave a coalesced tail as they drain), while
    two sleepers wake mid-run and force rotation re-splits.
    """

    def spin(cycles):
        yield Compute(cycles)

    def nap_then_spin(head, seconds, tail):
        yield Compute(head)
        yield Sleep(seconds)
        yield Compute(tail)

    for index in range(12):
        kernel.spawn(SimThread(f"spin{index}",
                               spin((1.1 + 0.13 * index) * 1e8)))
    kernel.spawn(SimThread("napper",
                           nap_then_spin(0.3e8, 0.017, 1.2e8)))
    kernel.spawn(SimThread("late",
                           nap_then_spin(0.1e8, 0.042, 0.8e8)))


def _observed(config: str, scheduler_name: str, coalesce: bool,
              faults: bool) -> str:
    """Canonical JSON of everything a contended run exposes."""
    system = System.build(config, seed=17,
                          scheduler=SCHEDULERS[scheduler_name](),
                          coalesce=coalesce)
    system.sim.tracer.enable(*ROTATION_TRACE)
    if faults:
        golden_fault_schedule().install(system)
    _contended_threads(system.kernel)
    duration = system.run()
    metrics = system.run_metrics()
    assert_conservation(metrics)
    result = SimpleNamespace(
        workload="rotation-panel", config=config, seed=17,
        trace=TraceData.from_system(system), run_metrics=metrics)
    return canonical_json({
        "duration": duration,
        "run_metrics": metrics.as_dict(),
        "chrome_trace": trace_to_json(chrome_trace([result])),
    })


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("config", STANDARD_CONFIG_LABELS)
def test_contended_panel_byte_identity(config, scheduler_name):
    coalesced = _observed(config, scheduler_name, True, faults=False)
    sliced = _observed(config, scheduler_name, False, faults=False)
    assert coalesced == sliced


@pytest.mark.parametrize("scheduler_name", sorted(SCHEDULERS))
@pytest.mark.parametrize("config", STANDARD_CONFIG_LABELS)
def test_contended_fault_storm_byte_identity(config, scheduler_name):
    coalesced = _observed(config, scheduler_name, True, faults=True)
    sliced = _observed(config, scheduler_name, False, faults=True)
    assert coalesced == sliced


# ----------------------------------------------------------------------
# Engagement: the bound the contended benchmark gates on
# ----------------------------------------------------------------------
def _pinned_run(coalesce: bool) -> System:
    """Fully pinned steady-state contention: 8 spinners per core.

    Pinning removes migrations and speed-scaling the work keeps every
    core contended for the same simulated time, so nearly the whole
    run is made of clean rotations — the benchmark scenario of
    ``kernel_timeslicing_contended``.
    """

    def spin(cycles):
        yield Compute(cycles)

    system = System.build("2f-2s/8", seed=1, coalesce=coalesce)
    for core in system.machine.cores:
        for slot in range(8):
            system.kernel.spawn(SimThread(
                f"c{core.index}t{slot}", spin(core.rate * 2.0),
                affinity=frozenset([core.index])))
    system.run()
    return system


def test_pinned_contention_engages_rotations():
    coalesced = _pinned_run(True)
    sliced = _pinned_run(False)
    assert coalesced.sim.events_fired * 5 <= sliced.sim.events_fired
    assert coalesced.run_metrics().to_json() == \
        sliced.run_metrics().to_json()
    counters = coalesced.run_metrics().counters
    assert counters.get("coalesce.rotation_macros_armed", 0) > 0


def test_rotation_counters_conserve():
    """armed == completed + split + absorbed once the run drains."""
    counters = _pinned_run(True).run_metrics().counters
    armed = counters.get("coalesce.rotation_macros_armed", 0.0)
    settled = (counters.get("coalesce.rotation_macros_completed", 0.0)
               + counters.get("coalesce.rotation_macros_split", 0.0)
               + counters.get("coalesce.rotation_macros_absorbed", 0.0))
    assert armed > 0
    assert armed == settled


@pytest.mark.parametrize("config", STANDARD_CONFIG_LABELS)
def test_macro_fallback_stays_zero(config):
    """The defensive fallback in ``_start_macro`` never fires on the
    standard configurations (it would silently shed the fast path)."""
    system = System.build(config, seed=17, coalesce=True)
    _contended_threads(system.kernel)
    system.run()
    counters = system.run_metrics().counters
    assert counters.get("coalesce.macro_fallback", 0.0) == 0.0


# ----------------------------------------------------------------------
# Property tests: anything landing inside a rotation window re-splits
# ----------------------------------------------------------------------
CONFIG_ST = st.sampled_from(list(STANDARD_CONFIG_LABELS))
SCHEDULER_ST = st.sampled_from(sorted(SCHEDULERS))


def _randomized_observed(config: str, scheduler_name: str,
                         coalesce: bool, wake_after: float,
                         head_cycles: float,
                         storm_seed) -> str:
    """One contended run with a randomized mid-rotation wakeup."""

    def spin(cycles):
        yield Compute(cycles)

    def waker():
        yield Compute(head_cycles)
        yield Sleep(wake_after)
        yield Compute(0.9e8)

    system = System.build(config, seed=23,
                          scheduler=SCHEDULERS[scheduler_name](),
                          coalesce=coalesce)
    system.sim.tracer.enable(*ROTATION_TRACE)
    if storm_seed is not None:
        FaultSchedule.throttle_storm(
            storm_seed, 0.25, cores=range(len(system.machine.cores)),
        ).install(system)
    for core in system.machine.cores:
        for slot in range(3):
            system.kernel.spawn(SimThread(
                f"c{core.index}t{slot}", spin(core.rate * 0.22),
                affinity=frozenset([core.index])))
    system.kernel.spawn(SimThread("waker", waker()))
    duration = system.run()
    metrics = system.run_metrics()
    assert_conservation(metrics)
    return canonical_json({"duration": duration,
                           "run_metrics": metrics.as_dict()})


@settings(max_examples=12, deadline=None)
@given(config=CONFIG_ST, scheduler_name=SCHEDULER_ST,
       wake_after=st.floats(min_value=1e-4, max_value=0.2),
       head_cycles=st.floats(min_value=1e6, max_value=2e8))
def test_random_wakeup_inside_rotation_resplits(config, scheduler_name,
                                                wake_after,
                                                head_cycles):
    """A wakeup at an arbitrary time inside a rotation window lands on
    byte-identical sliced state."""
    coalesced = _randomized_observed(config, scheduler_name, True,
                                     wake_after, head_cycles, None)
    sliced = _randomized_observed(config, scheduler_name, False,
                                  wake_after, head_cycles, None)
    assert coalesced == sliced


@settings(max_examples=10, deadline=None)
@given(config=CONFIG_ST, scheduler_name=SCHEDULER_ST,
       wake_after=st.floats(min_value=1e-4, max_value=0.2),
       storm_seed=st.integers(0, 2**16))
def test_random_fault_storm_inside_rotation_resplits(config,
                                                     scheduler_name,
                                                     wake_after,
                                                     storm_seed):
    """Random throttle storms (duty-cycle reprogramming mid-window)
    re-split rotations to byte-identical sliced state."""
    coalesced = _randomized_observed(config, scheduler_name, True,
                                     wake_after, 0.4e8, storm_seed)
    sliced = _randomized_observed(config, scheduler_name, False,
                                  wake_after, 0.4e8, storm_seed)
    assert coalesced == sliced
