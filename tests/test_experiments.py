"""Tests for the experiment harness (runner, report, exhibits)."""

import pytest

from repro.experiments import (
    ALL_EXHIBITS,
    QUICK,
    Runner,
    format_series,
    format_speedups,
    format_sweep,
    format_table,
    get_profile,
)
from repro.experiments.profiles import PAPER
from repro.workloads import Pmake, SpecOmpBenchmark


class TestProfiles:
    def test_lookup(self):
        assert get_profile("quick") is QUICK
        assert get_profile("paper") is PAPER

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            get_profile("medium")

    def test_paper_profile_matches_protocol(self):
        assert PAPER.warehouses == tuple(range(1, 21))
        assert PAPER.tpch_queries == tuple(range(1, 23))
        assert PAPER.tpch_query_runs == 13
        assert PAPER.injection_rates == (250, 290, 320)


class TestRunner:
    def test_runs_all_configs(self):
        runner = Runner(runs=2, base_seed=7)
        sweep = runner.run(Pmake(n_files=40))
        assert len(sweep.configs) == 9
        assert all(len(runs) == 2 for runs in sweep.results.values())

    def test_invalid_runs_rejected(self):
        with pytest.raises(ValueError):
            Runner(runs=0)

    def test_seeds_are_distinct_per_repetition(self):
        runner = Runner(configs=["4f-0s"], runs=3, base_seed=50)
        sweep = runner.run(Pmake(n_files=40))
        seeds = [run.seed for run in sweep.results["4f-0s"]]
        assert seeds == [50, 51, 52]

    def test_sweep_accessors(self):
        runner = Runner(configs=["4f-0s", "0f-4s/8"], runs=2)
        sweep = runner.run(Pmake(n_files=40))
        assert set(sweep.samples()) == {"4f-0s", "0f-4s/8"}
        assert sweep.summary("4f-0s").n == 2
        means = sweep.means()
        assert means["0f-4s/8"] > means["4f-0s"]

    def test_speedups_normalized_to_baseline(self):
        runner = Runner(configs=["4f-0s", "0f-4s/8"], runs=2)
        sweep = runner.run(Pmake(n_files=40))
        speedups = sweep.speedups(baseline="0f-4s/8")
        assert speedups["0f-4s/8"] == pytest.approx(1.0)
        assert speedups["4f-0s"] > 4.0  # runtime metric, 8x power

    def test_classification_from_sweep(self):
        # All nine configurations: the 4-config Figure 8 subset is too
        # coarse to expose the broken speed-vs-power fit.
        runner = Runner(runs=2)
        sweep = runner.run(SpecOmpBenchmark("swim"))
        cls = sweep.classification()
        assert cls.predictable        # pinned team: stable
        assert not cls.scalable       # static loops: slowest-bound


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) <= len(max(lines, key=len))
                   for line in lines)

    def test_format_sweep_contains_configs(self):
        runner = Runner(configs=["4f-0s"], runs=2)
        sweep = runner.run(Pmake(n_files=40))
        text = format_sweep(sweep)
        assert "4f-0s" in text
        assert "CoV" in text

    def test_format_sweep_policy_columns(self):
        runner = Runner(configs=["4f-0s", "2f-2s/8"], runs=1)
        sweeps = {
            policy: runner.run(
                SpecOmpBenchmark("swim", omp_schedule=policy))
            for policy in ("static", "stealing")
        }
        text = format_sweep(policies=sweeps)
        assert "static" in text and "stealing" in text
        assert "2f-2s/8" in text
        assert "by schedule" in text

    def test_format_sweep_requires_input(self):
        with pytest.raises(ValueError):
            format_sweep()
        assert "no data" in format_sweep(policies={})

    def test_format_speedups_empty(self):
        assert "no data" in format_speedups({})

    def test_format_series(self):
        text = format_series("t", [1, 2], {"s": [10.0, 20.0]},
                             x_name="n")
        assert "t" in text and "n" in text and "20.0" in text


class TestExhibitRegistry:
    def test_all_fourteen_exhibits_present(self):
        expected = {"fig01", "fig02", "fig03", "fig04", "fig05",
                    "fig06", "fig07", "fig08", "fig09", "fig10",
                    "fig11", "fig12", "fig13", "table1"}
        assert set(ALL_EXHIBITS) == expected

    def test_every_exhibit_has_run_and_render(self):
        for name, module in ALL_EXHIBITS.items():
            assert callable(module.run), name
            assert callable(module.render), name
            assert callable(module.main), name

    def test_fig09_quick_run_renders(self):
        # One end-to-end exhibit smoke test (the cheapest one); the
        # benchmarks exercise the rest.
        module = ALL_EXHIBITS["fig09"]
        text = module.render(module.run(QUICK))
        assert "Figure 9(a)" in text
        assert "PMAKE" in text
