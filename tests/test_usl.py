"""USL fitting and analytic sweep prediction (DESIGN.md §10).

Covers the model layer (:mod:`repro.analysis.usl`) with synthetic
exact-recovery cases, and ``Runner.predict_sweep`` end to end on the
two workloads the acceptance bar names: SPECjbb (throughput —
capacity axis) and the TPC-H power run (runtime — straggler axis),
checking the predicted curves against independently simulated full
sweeps and exercising the spot-check gate in both directions.
"""

from __future__ import annotations

import pytest

from repro.analysis.usl import (
    compute_power,
    fit_usl,
    scaling_axis,
)
from repro.errors import PredictionGateError
from repro.experiments.parallel import (
    ResultCache,
    RunTask,
    SerialBackend,
    task_fingerprint,
)
from repro.experiments.runner import Runner
from repro.machine.topology import STANDARD_CONFIG_LABELS
from repro.workloads.specjbb import SpecJBB
from repro.workloads.tpch.workload import TpchPowerRun


def _specjbb() -> SpecJBB:
    return SpecJBB(warehouses=4, measurement_seconds=0.3,
                   warmup_seconds=0.1)


def _tpch() -> TpchPowerRun:
    return TpchPowerRun(parallel_degree=4, optimization_degree=7,
                        queries=[1, 3, 6])


# ----------------------------------------------------------------------
# The model layer
# ----------------------------------------------------------------------
def _usl_curve(gamma, sigma, kappa, x):
    return gamma * x / (1.0 + sigma * (x - 1.0)
                        + kappa * x * (x - 1.0))


def test_fit_recovers_synthetic_throughput_curve():
    gamma, sigma, kappa = 120.0, 0.08, 0.015
    points = {label: _usl_curve(gamma, sigma, kappa,
                                compute_power(label))
              for label in STANDARD_CONFIG_LABELS}
    fit = fit_usl(points, higher_is_better=True)
    assert fit.gamma == pytest.approx(gamma, rel=1e-9)
    assert fit.sigma == pytest.approx(sigma, rel=1e-6)
    assert fit.kappa == pytest.approx(kappa, rel=1e-6)
    assert fit.r_squared == pytest.approx(1.0, abs=1e-12)
    assert fit.physical
    for label, value in points.items():
        assert fit.predict_config(label) == \
            pytest.approx(value, rel=1e-9)


def test_fit_recovers_synthetic_runtime_curve():
    gamma, sigma, kappa = 0.25, 0.4, 0.02
    points = {}
    for label in STANDARD_CONFIG_LABELS:
        x, base = scaling_axis(label, higher_is_better=False)
        points[label] = 1.0 / (base * _usl_curve(gamma, sigma,
                                                 kappa, x))
    fit = fit_usl(points, higher_is_better=False)
    assert fit.gamma == pytest.approx(gamma, rel=1e-6)
    assert fit.sigma == pytest.approx(sigma, rel=1e-6)
    assert fit.kappa == pytest.approx(kappa, rel=1e-5)
    for label, value in points.items():
        assert fit.predict_config(label) == \
            pytest.approx(value, rel=1e-9)


def test_scaling_axis_shapes():
    # Throughput: total compute power, no normalization.
    assert scaling_axis("2f-2s/8", True) == (2.25, 1.0)
    assert scaling_axis("4f-0s", True) == (4.0, 1.0)
    # Runtime: 1 + cores faster than the slowest, straggler capacity.
    assert scaling_axis("2f-2s/8", False) == (3.0, 4 * 0.125)
    assert scaling_axis("0f-4s/4", False) == (1.0, 4 * 0.25)
    # A homogeneous machine has no cores outrunning the slowest.
    assert scaling_axis("4f-0s", False) == (1.0, 4.0)


def test_fit_rejects_degenerate_inputs():
    with pytest.raises(ValueError, match="positive measurements"):
        fit_usl({"4f-0s": 0.0, "2f-2s/8": 1.0, "0f-4s/8": 1.0})
    with pytest.raises(ValueError, match="three configurations"):
        fit_usl({"4f-0s": 4.0, "2f-2s/8": 2.0})
    # On the runtime axis these three all sit at x == 1 (no core
    # outruns the slowest), so the fit has one abscissa, not three.
    with pytest.raises(ValueError, match="three configurations"):
        fit_usl({"4f-0s": 1.0, "0f-4s/4": 4.0, "0f-4s/8": 8.0},
                higher_is_better=False)


def test_unphysical_fit_still_interpolates():
    points = {"0f-4s/8": 1.0, "2f-2s/8": 7.0, "4f-0s": 9.0}
    fit = fit_usl(points, higher_is_better=True)
    assert not fit.physical  # superlinear start: sigma < 0
    for label, value in points.items():
        assert fit.predict_config(label) == \
            pytest.approx(value, rel=1e-9)


# ----------------------------------------------------------------------
# predict_sweep end to end
# ----------------------------------------------------------------------
def _assert_curve_close(prediction, full_means, tolerance):
    for label, value in prediction.means().items():
        reference = full_means[label]
        assert value == pytest.approx(reference, rel=tolerance), \
            f"{label}: predicted {value} vs simulated {reference}"


def test_predict_sweep_specjbb_reproduces_full_curve():
    runner = Runner(runs=2, base_seed=100)
    workload = _specjbb()
    full = runner.run(workload).means()
    prediction = runner.predict_sweep(workload, tolerance=0.20)
    # The budget the analytic sweep exists for: one third simulated.
    assert len(prediction.anchors) * 3 <= len(prediction.configs)
    assert prediction.fit.r_squared == pytest.approx(1.0, abs=1e-9)
    assert prediction.spot_checks  # the gate ran and passed
    assert prediction.max_spot_error <= 0.20
    _assert_curve_close(prediction, full, tolerance=0.20)


def test_predict_sweep_tpch_reproduces_full_curve():
    runner = Runner(runs=2, base_seed=100)
    workload = _tpch()
    full = runner.run(workload).means()
    prediction = runner.predict_sweep(workload, tolerance=0.10)
    assert len(prediction.anchors) * 3 <= len(prediction.configs)
    # The straggler axis makes the nine configs one smooth curve;
    # the fit must stay tight even though runtimes span ~8x.
    assert prediction.spot_checks
    assert prediction.max_spot_error <= 0.10
    _assert_curve_close(prediction, full, tolerance=0.10)


def test_predict_sweep_gate_raises_on_tight_tolerance():
    runner = Runner(runs=2, base_seed=100)
    with pytest.raises(PredictionGateError) as excinfo:
        runner.predict_sweep(_specjbb(), tolerance=1e-9)
    prediction = excinfo.value.prediction
    assert prediction is not None
    assert prediction.spot_checks
    assert prediction.max_spot_error > 1e-9


def test_predict_sweep_without_gate_simulates_only_anchors():
    cache = ResultCache()
    backend = SerialBackend(cache=cache)
    runner = Runner(runs=2, base_seed=100, backend=backend)
    prediction = runner.predict_sweep(_specjbb(), spot_checks=0)
    assert prediction.spot_checks == []
    assert prediction.simulated_configs == prediction.anchors
    assert backend.simulations_run == 2 * len(prediction.anchors)
    # Every non-anchor config is covered by the model instead.
    assert set(prediction.predicted) == \
        set(prediction.configs) - set(prediction.anchors)


def test_predict_sweep_anchor_runs_share_the_result_cache():
    cache = ResultCache()
    backend = SerialBackend(cache=cache)
    runner = Runner(runs=2, base_seed=100, backend=backend)
    workload = _specjbb()
    runner.predict_sweep(workload, spot_checks=1)
    after_predict = backend.simulations_run
    assert after_predict == 2 * 4  # 3 anchors + 1 spot check
    # A later full sweep reuses every simulated config for free.
    runner.run(workload)
    assert backend.simulations_run == after_predict + 2 * 5


def test_predict_sweep_rejects_bad_inputs():
    runner = Runner(runs=1, base_seed=100)
    with pytest.raises(ValueError, match="not in sweep"):
        runner.predict_sweep(_specjbb(), anchors=["9f-9s/2"])
    with pytest.raises(ValueError, match="tolerance"):
        runner.predict_sweep(_specjbb(), tolerance=0.0)


def test_fingerprint_folds_prediction_mode():
    """Analytic results can never collide with simulated ones."""
    workload = _specjbb()
    simulated = RunTask(workload, "2f-2s/8", 7)
    predicted = RunTask(workload, "2f-2s/8", 7, predicted=True)
    assert task_fingerprint(simulated) != task_fingerprint(predicted)
    assert task_fingerprint(simulated) == \
        task_fingerprint(RunTask(workload, "2f-2s/8", 7))
