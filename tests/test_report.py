"""Unit tests for the plain-text report renderers."""

import pytest

from repro.experiments.report import (
    format_histogram,
    format_metrics,
    format_seconds,
    format_series,
    format_speedups,
    format_sweep,
    format_table,
)
from repro.histogram import LatencyHistogram
from repro.experiments.runner import ConfigSweep
from repro.metrics import CoreMetrics, RunMetrics
from repro.workloads.base import RunResult


def _sweep(name="W", values=((10.0, 12.0), (5.0, 5.0)),
           configs=("4f-0s", "0f-4s/8"), higher_is_better=True):
    results = {}
    for config, runs in zip(configs, values):
        results[config] = [
            RunResult(name, config, seed, {"throughput": value})
            for seed, value in enumerate(runs)]
    return ConfigSweep(workload=name, primary_metric="throughput",
                       higher_is_better=higher_is_better,
                       results=results)


class TestFormatTable:
    def test_columns_align_to_widest_cell(self):
        text = format_table(["a", "long-header"],
                            [["wide-cell", "x"], ["y", "z"]])
        lines = text.splitlines()
        assert len({len(line.rstrip()) for line in lines[:2]}) == 1
        assert lines[1] == "---------  -----------"

    def test_no_rows_still_renders_header(self):
        lines = format_table(["h1", "h2"], []).splitlines()
        assert lines[0].split() == ["h1", "h2"]
        assert len(lines) == 2


class TestFormatSweep:
    def test_one_row_per_config_with_stats(self):
        text = format_sweep(_sweep())
        assert "W — throughput" in text
        assert "4f-0s" in text and "0f-4s/8" in text
        assert "11.00" in text        # mean of (10, 12)
        assert "10.00..12.00" in text

    def test_explicit_metric_and_unit(self):
        text = format_sweep(_sweep(), metric="throughput", unit="ops")
        assert "11.00ops" in text


class TestFormatSpeedups:
    def test_empty_input_reports_no_data(self):
        assert format_speedups({}) == "(no data)"

    def test_matrix_of_speedups_over_baseline(self):
        sweeps = {"W": _sweep()}
        text = format_speedups(sweeps, baseline="0f-4s/8")
        # 11 ops vs the 5 ops baseline: 2.20x; baseline itself 1.00.
        assert "2.20" in text and "1.00" in text
        assert text.splitlines()[0].split() == \
            ["workload", "4f-0s", "0f-4s/8"]

    def test_lower_is_better_inverts_ratio(self):
        sweeps = {"W": _sweep(values=((2.0, 2.0), (4.0, 4.0)),
                              higher_is_better=False)}
        text = format_speedups(sweeps, baseline="0f-4s/8")
        assert "2.00" in text

    def test_missing_baseline_raises(self):
        with pytest.raises(KeyError):
            format_speedups({"W": _sweep()}, baseline="nope")


class TestFormatSeries:
    def test_rows_follow_xs(self):
        text = format_series("T", [1, 2],
                             {"a": [10.0, 20.0], "b": [1.5, 2.5]},
                             x_name="warehouses")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1].split() == ["warehouses", "a", "b"]
        assert lines[3].split() == ["1", "10.0", "1.5"]
        assert lines[4].split() == ["2", "20.0", "2.5"]

    def test_empty_sweep_renders_header_only(self):
        lines = format_series("T", [], {"a": []}).splitlines()
        assert lines[0] == "T"
        assert len(lines) == 3  # title + header + rule, no rows

    def test_no_series_at_all(self):
        lines = format_series("T", [1.0], {}).splitlines()
        assert lines[1].split() == ["x"]
        assert lines[3].split() == ["1"]


class TestFormatMetrics:
    @staticmethod
    def _metrics(counters=None):
        cores = [
            CoreMetrics(index=0, speed_class="fast", rate_hz=2e9,
                        busy_seconds=0.75, idle_seconds=0.25,
                        busy_cycles=1.5e9, dispatches=10,
                        migrations_in=2, preemptions=1,
                        runqueue_samples=10, runqueue_total=5,
                        runqueue_max=3),
            CoreMetrics(index=1, speed_class="slow", rate_hz=1e9,
                        busy_seconds=1.0, idle_seconds=0.0,
                        busy_cycles=1e9, dispatches=4,
                        migrations_in=0, preemptions=0,
                        runqueue_samples=4, runqueue_total=0,
                        runqueue_max=0),
        ]
        return RunMetrics(
            config="1f-1s/2", scheduler="asymmetry-aware",
            duration=1.0, context_switches=14, migrations=2,
            preemptions=1, preempt_pulls=1, threads_spawned=3,
            threads_finished=3, cores=cores,
            counters=dict(counters or {}))

    def test_per_core_rows_and_totals(self):
        text = format_metrics(self._metrics())
        assert "1f-1s/2 — asymmetry-aware (1 run, 1.000s simulated)" \
            in text
        assert "cpu0" in text and "cpu1" in text
        assert "0.750" in text          # cpu0 busy & utilization
        assert "context switches: 14" in text
        assert "threads: 3/3" in text

    def test_counters_render_sorted(self):
        text = format_metrics(self._metrics(
            {"z.last": 2.0, "a.first": 1.0}))
        assert text.index("a.first") < text.index("z.last")

    def test_counters_can_be_suppressed(self):
        metrics = self._metrics({"gc.collections": 3.0})
        assert "gc.collections" in format_metrics(metrics)
        assert "gc.collections" not in format_metrics(metrics,
                                                      counters=False)

    def test_plural_runs_header(self):
        metrics = RunMetrics.merge([self._metrics(), self._metrics()])
        assert "(2 runs, 2.000s simulated)" in format_metrics(metrics)

    def test_histograms_render_when_present(self):
        metrics = self._metrics()
        hist = LatencyHistogram()
        hist.add(0.002)
        metrics.histograms["sched_latency_seconds"] = hist
        text = format_metrics(metrics)
        assert "sched_latency_seconds: 1 samples" in text
        assert "sched_latency_seconds" not in \
            format_metrics(metrics, counters=False)

    def test_empty_histograms_are_skipped(self):
        metrics = self._metrics()
        metrics.histograms["sched_latency_seconds"] = \
            LatencyHistogram()
        assert "sched_latency_seconds" not in format_metrics(metrics)


class TestFormatSeconds:
    def test_si_units(self):
        assert format_seconds(0.0) == "0s"
        assert format_seconds(1.5) == "1.5s"
        assert format_seconds(0.0025) == "2.5ms"
        assert format_seconds(3.4e-5) == "34us"
        assert format_seconds(2e-9) == "2ns"


class TestFormatHistogram:
    def test_empty_histogram(self):
        assert format_histogram("lat", LatencyHistogram()) == \
            "lat: (empty)"

    def test_single_bucket(self):
        hist = LatencyHistogram()
        for _ in range(3):
            hist.add(0.01)
        text = format_histogram("lat", hist)
        lines = text.splitlines()
        assert lines[0].startswith("lat: 3 samples")
        assert len(lines) == 2          # summary + one bucket row
        assert lines[1].rstrip().endswith("#" * 40)
        assert "3" in lines[1]

    def test_zeros_get_their_own_row(self):
        hist = LatencyHistogram()
        hist.add(0.0)
        hist.add(0.5)
        text = format_histogram("lat", hist)
        assert "= 0" in text

    def test_merge_of_unequal_bucket_sets_renders_all_buckets(self):
        a = LatencyHistogram()
        a.add(1e-4)
        b = LatencyHistogram()
        b.add(1.0)
        b.add(0.0)
        merged = LatencyHistogram.merge([a, b])
        text = format_histogram("lat", merged)
        lines = text.splitlines()
        # summary + zeros row + one row per distinct bucket.
        assert len(lines) == 4
        assert lines[0].startswith("lat: 3 samples")

    def test_bars_scale_to_fullest_bucket(self):
        hist = LatencyHistogram()
        for _ in range(40):
            hist.add(0.01)
        hist.add(1.0)
        lines = format_histogram("lat", hist, width=20).splitlines()
        bars = [line.count("#") for line in lines[1:]]
        assert max(bars) == 20
        assert min(bars) == 1           # tiny buckets still visible
