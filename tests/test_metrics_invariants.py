"""Invariant tests of the observability layer (:mod:`repro.metrics`).

The headline property: on every one of the paper's nine machine
configurations, under both the stock and the asymmetry-aware
scheduler, the books balance — per core, ``busy + idle == duration``
and retired cycles equal the cycles threads account for, even when the
snapshot is taken mid-run with slices still in flight.
"""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro import System
from repro.kernel import (
    AsymmetryAwareScheduler,
    Compute,
    SimThread,
    Sleep,
    SymmetricScheduler,
    YieldCPU,
)
from repro.machine import STANDARD_CONFIG_LABELS
from repro.metrics import CounterBag, RunMetrics
from repro.workloads.specjbb import SpecJBB
from repro.workloads.tpch import TpchQuery
from tests import harness

SCHEDULERS = {
    "stock": None,
    "asym": AsymmetryAwareScheduler,
}


def _mixed_body(cycles_list, sleepy):
    for cycles in cycles_list:
        yield Compute(cycles)
        if sleepy:
            yield Sleep(0.001)
        else:
            yield YieldCPU()


def _run_panel_system(config, scheduler_cls, seed):
    system = System.build(
        config, seed=seed,
        scheduler=scheduler_cls() if scheduler_cls else None)
    for index in range(4):
        cycles = [2e7 * (index + 1), 5e6]
        system.kernel.spawn(
            SimThread(f"t{index}", _mixed_body(cycles, index % 2 == 0)))
    system.run()
    return system


# ----------------------------------------------------------------------
# The headline property: nine configs x seed panel x both schedulers
# ----------------------------------------------------------------------
@pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
@pytest.mark.parametrize("config", STANDARD_CONFIG_LABELS)
def test_cycle_conservation_every_config(config, scheduler):
    for seed in (0, 7, 1234):
        system = _run_panel_system(config, SCHEDULERS[scheduler], seed)
        metrics = system.run_metrics()
        harness.assert_conservation(metrics)
        assert metrics.config == config
        assert metrics.threads_finished == metrics.threads_spawned == 4
        assert metrics.context_switches == \
            sum(core.dispatches for core in metrics.cores)
        assert metrics.migrations == \
            sum(core.migrations_in for core in metrics.cores)


@settings(max_examples=20, deadline=None)
@given(config=st.sampled_from(list(STANDARD_CONFIG_LABELS)),
       scheduler=st.sampled_from([None, SymmetricScheduler,
                                  AsymmetryAwareScheduler]),
       seed=st.integers(0, 2**16),
       workloads=st.lists(
           st.lists(st.floats(min_value=0, max_value=5e8),
                    min_size=1, max_size=3),
           min_size=1, max_size=5),
       sleepy=st.booleans())
def test_conservation_and_trace_agree(config, scheduler, seed,
                                      workloads, sleepy):
    """Counters conserve cycles AND agree with an independent trace."""
    system = System.build(config, seed=seed,
                          scheduler=scheduler() if scheduler else None)
    system.sim.tracer.enable("sched")
    for index, cycles_list in enumerate(workloads):
        system.kernel.spawn(
            SimThread(f"t{index}", _mixed_body(cycles_list, sleepy)))
    system.run()
    metrics = system.run_metrics()
    harness.assert_conservation(metrics)
    errors = harness.trace_consistency_errors(
        metrics, system.sim.tracer.records("sched"))
    assert errors == []


def test_midrun_snapshot_conserves():
    """A snapshot at a horizon, with daemons still running and slices
    in flight, must still balance the books."""

    def spinner():
        while True:
            yield Compute(1e7)
            yield Sleep(0.0005)

    system = System.build("2f-2s/8", seed=3)
    for index in range(6):
        system.kernel.spawn(
            SimThread(f"spin{index}", spinner(), daemon=True))
    system.run(until=0.05)
    metrics = system.run_metrics()
    assert metrics.duration == pytest.approx(0.05)
    harness.assert_conservation(metrics)
    assert metrics.total_busy_seconds > 0


def test_fast_cores_never_idle_under_asym_policy():
    """Paper §3.1.1 via the harness watcher, on an asymmetric config."""
    system = System.build("1f-3s/8", seed=21,
                          scheduler=AsymmetryAwareScheduler())
    watcher = harness.watch_fast_cores(system)
    for index in range(5):
        system.kernel.spawn(
            SimThread(f"t{index}", _mixed_body([3e8], False)))
    system.run()
    watcher.assert_clean()
    harness.assert_conservation(system.run_metrics())


# ----------------------------------------------------------------------
# Workload integration: metrics ride on every RunResult
# ----------------------------------------------------------------------
def test_specjbb_attaches_conserving_metrics_and_counters():
    workload = SpecJBB(warehouses=2, measurement_seconds=0.4,
                       warmup_seconds=0.1)
    result = workload.run_once("2f-2s/8", seed=5)
    metrics = result.run_metrics
    assert metrics is not None
    harness.assert_conservation(metrics)
    assert metrics.scheduler == "symmetric"
    assert metrics.counters.get("specjbb.transactions", 0) > 0
    # The GC instrumentation records where collection cycles finish —
    # the paper's decisive mechanism for Figure 1's variance.
    gc_cycles = (metrics.counters.get("gc.cycles_on_fast_core", 0)
                 + metrics.counters.get("gc.cycles_on_slow_core", 0))
    assert gc_cycles == metrics.counters.get("gc.collections", 0)


def test_tpch_dispatch_counters_split_by_speed_class():
    workload = TpchQuery(3, parallel_degree=4, optimization_degree=7)
    result = workload.run_once("2f-2s/8", seed=9)
    metrics = result.run_metrics
    assert metrics is not None
    harness.assert_conservation(metrics)
    counters = metrics.counters
    assert counters["db2.queries"] == 1
    dispatched = counters.get("db2.dispatch.fast", 0) \
        + counters.get("db2.dispatch.slow", 0)
    assert dispatched > 0
    # Round-robin over 2 fast + 2 slow cores splits pieces evenly.
    assert counters.get("db2.dispatch.fast", 0) == \
        counters.get("db2.dispatch.slow", 0)


# ----------------------------------------------------------------------
# RunMetrics mechanics: serialization, merge, counters
# ----------------------------------------------------------------------
def _sample_metrics(seed=13):
    system = _run_panel_system("2f-2s/8", AsymmetryAwareScheduler, seed)
    return system.run_metrics()


def test_json_round_trip_is_lossless():
    metrics = _sample_metrics()
    clone = RunMetrics.from_json(metrics.to_json())
    assert clone.to_json() == metrics.to_json()
    assert clone.as_dict() == metrics.as_dict()


def test_to_json_is_deterministic():
    assert _sample_metrics().to_json(indent=2) == \
        _sample_metrics().to_json(indent=2)
    parsed = json.loads(_sample_metrics().to_json())
    assert list(parsed) == sorted(parsed)


def test_merge_sums_and_preserves_conservation():
    a, b = _sample_metrics(1), _sample_metrics(2)
    merged = RunMetrics.merge([a, b])
    assert merged.runs == 2
    assert merged.duration == pytest.approx(a.duration + b.duration)
    assert merged.context_switches == \
        a.context_switches + b.context_switches
    assert merged.core(0).busy_seconds == pytest.approx(
        a.core(0).busy_seconds + b.core(0).busy_seconds)
    harness.assert_conservation(merged)


def test_merge_order_is_deterministic_but_config_mixes():
    asym = _sample_metrics()
    system = _run_panel_system("4f-0s", None, 13)
    other = system.run_metrics()
    merged = RunMetrics.merge([asym, other])
    assert merged.config == "mixed"
    assert merged.scheduler == "mixed"
    # Same items, same order, byte-identical result.
    again = RunMetrics.merge([_sample_metrics(), other])
    assert merged.to_json() == again.to_json()


def test_merge_rejects_empty():
    with pytest.raises(ValueError):
        RunMetrics.merge([])


def test_counter_bag_basics():
    bag = CounterBag()
    assert len(bag) == 0 and "x" not in bag
    bag.incr("x")
    bag.incr("x", 2.5)
    bag.incr("y")
    assert bag.get("x") == 3.5
    assert bag.get("missing", -1.0) == -1.0
    assert "x" in bag and len(bag) == 2
    assert list(bag.as_dict()) == ["x", "y"]


def test_conservation_errors_reports_cooked_books():
    metrics = _sample_metrics()
    metrics.cores[0].busy_seconds += 1.0
    errors = metrics.conservation_errors()
    assert any("core 0" in error for error in errors)
