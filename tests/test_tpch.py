"""TPC-H workload tests (paper §3.3 shapes)."""

import pytest

from repro.analysis.stats import summarize
from repro.errors import WorkloadError
from repro.kernel import AsymmetryAwareScheduler
from repro.workloads.tpch import (
    LOW_OPT_DEGREE,
    MAX_OPT_DEGREE,
    TpchPowerRun,
    TpchQuery,
    all_queries,
    build_plan,
    plan_cost_seconds,
    plan_skew,
)

QUERIES = [1, 3, 6, 9, 14, 18]
SEEDS = range(5)


def runtimes(workload, config, asym=False, seeds=SEEDS):
    factory = AsymmetryAwareScheduler if asym else None
    return [workload.run_once(config, seed=s,
                              scheduler_factory=factory)
            .metric("runtime") for s in seeds]


class TestPlans:
    def test_twenty_two_queries(self):
        assert all_queries() == list(range(1, 23))

    def test_unknown_query_rejected(self):
        with pytest.raises(WorkloadError):
            plan_cost_seconds(23, 7)

    def test_bad_opt_degree_rejected(self):
        with pytest.raises(WorkloadError):
            plan_cost_seconds(1, 9)

    def test_bad_parallel_degree_rejected(self):
        with pytest.raises(WorkloadError):
            build_plan(1, 0, 7)

    def test_lower_optimization_costs_more(self):
        assert plan_cost_seconds(3, LOW_OPT_DEGREE) > \
            plan_cost_seconds(3, MAX_OPT_DEGREE)

    def test_aggressive_plans_are_more_skewed(self):
        assert plan_skew(MAX_OPT_DEGREE) < plan_skew(LOW_OPT_DEGREE)

    def test_plan_total_matches_cost(self):
        plan = build_plan(3, 4, 7, frequency_hz=2.8e9)
        expected = plan_cost_seconds(3, 7) * 2.8e9
        assert plan.total_cycles == pytest.approx(expected)

    def test_plans_are_deterministic(self):
        first = build_plan(9, 8, 7)
        second = build_plan(9, 8, 7)
        assert [p.cycles for p in first.pieces] == \
            [p.cycles for p in second.pieces]

    def test_piece_count_matches_parallel_degree(self):
        for degree in (1, 4, 8):
            assert len(build_plan(5, degree, 7).pieces) == degree


class TestPaperShapes:
    def test_symmetric_power_runs_cluster(self):
        workload = TpchPowerRun(4, 7, queries=QUERIES)
        for config in ("4f-0s", "0f-4s/8"):
            assert summarize(runtimes(workload, config,
                                      seeds=range(3))).cov < 0.01

    def test_asymmetric_power_runs_vary(self):
        workload = TpchPowerRun(4, 7, queries=QUERIES)
        assert summarize(runtimes(workload, "3f-1s/8")).cov > 0.03

    def test_higher_parallelization_increases_variance(self):
        # Judged on the full 22-query power run — per-query dispatch
        # noise averages out there, isolating the degree effect.
        par4 = summarize(runtimes(TpchPowerRun(4, 7), "2f-2s/8",
                                  seeds=range(6)))
        par8 = summarize(runtimes(TpchPowerRun(8, 7), "2f-2s/8",
                                  seeds=range(6)))
        assert par8.cov > 1.5 * par4.cov

    def test_low_optimization_slower_but_stabler(self):
        opt7 = summarize(runtimes(TpchPowerRun(4, 7, queries=QUERIES),
                                  "2f-2s/8"))
        opt2 = summarize(runtimes(TpchPowerRun(4, 2, queries=QUERIES),
                                  "2f-2s/8"))
        assert opt2.mean > 1.5 * opt7.mean  # slower...
        assert opt2.cov < opt7.cov / 2      # ...but far stabler

    def test_kernel_fix_is_ineffective(self):
        # DB2 binds its server processes itself (§3.3.1).
        workload = TpchPowerRun(4, 7, queries=QUERIES)
        stock = summarize(runtimes(workload, "2f-2s/8"))
        fixed = summarize(runtimes(workload, "2f-2s/8", asym=True))
        assert fixed.cov == pytest.approx(stock.cov, rel=0.05)

    def test_serial_query_is_bimodal(self):
        # Parallelization off: "two distinct runtimes ... one where the
        # runtime corresponds to the fastest processor, and another
        # ... the slowest."
        workload = TpchQuery(3, parallel_degree=1)
        values = runtimes(workload, "2f-2s/8", seeds=range(10))
        distinct = {round(v, 1) for v in values}
        assert len(distinct) == 2
        assert max(distinct) > 6 * min(distinct)

    def test_power_run_reports_per_query_times(self):
        result = TpchPowerRun(4, 7, queries=[1, 3]).run_once("4f-0s")
        assert "q1_runtime" in result.metrics
        assert "q3_runtime" in result.metrics
        total = result.metric("q1_runtime") + result.metric("q3_runtime")
        assert result.metric("runtime") == pytest.approx(total, rel=0.01)
