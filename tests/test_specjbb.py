"""SPECjbb workload tests (paper §3.1 shapes)."""

import pytest

from repro.analysis.stats import summarize
from repro.kernel import AsymmetryAwareScheduler
from repro.runtime.jvm import GCKind
from repro.workloads.specjbb import SpecJBB

SEEDS = range(5)


def throughputs(workload, config, asym=False, seeds=SEEDS):
    factory = AsymmetryAwareScheduler if asym else None
    return [workload.run_once(config, seed=s,
                              scheduler_factory=factory)
            .metric("throughput") for s in seeds]


def quick(gc=GCKind.CONCURRENT, **kwargs):
    kwargs.setdefault("warehouses", 8)
    kwargs.setdefault("measurement_seconds", 1.0)
    return SpecJBB(gc=gc, **kwargs)


class TestConstruction:
    def test_rejects_zero_warehouses(self):
        with pytest.raises(ValueError):
            SpecJBB(warehouses=0)

    def test_rejects_unknown_vm(self):
        with pytest.raises(ValueError):
            quick(vm="exotic-jvm").run_once("4f-0s")

    def test_metrics_present(self):
        result = quick().run_once("4f-0s", seed=1)
        for metric in ("throughput", "transactions", "gc_stall_time",
                       "gc_stalls", "gc_collections"):
            assert metric in result.metrics


class TestPaperShapes:
    def test_symmetric_configs_are_stable(self):
        for config in ("4f-0s", "0f-4s/8"):
            summary = summarize(throughputs(quick(), config))
            assert summary.cov < 0.02, config

    def test_asymmetric_config_is_unstable_with_concurrent_gc(self):
        summary = summarize(throughputs(quick(), "2f-2s/8"))
        assert summary.cov > 0.10

    def test_parallel_gc_is_far_more_stable(self):
        concurrent = summarize(throughputs(quick(), "2f-2s/8"))
        parallel = summarize(throughputs(
            quick(gc=GCKind.PARALLEL), "2f-2s/8"))
        assert parallel.cov < concurrent.cov / 5

    def test_asymmetry_aware_kernel_fixes_instability(self):
        stock = summarize(throughputs(quick(), "2f-2s/8"))
        fixed = summarize(throughputs(quick(), "2f-2s/8", asym=True))
        assert fixed.cov < 0.05 < stock.cov
        # The fix also lands near the stock scheduler's best case.
        assert fixed.mean > stock.mean

    def test_throughput_scales_with_compute_power(self):
        fast = summarize(throughputs(quick(), "4f-0s")).mean
        slow = summarize(throughputs(quick(), "0f-4s/8")).mean
        assert fast > 4 * slow

    def test_hotspot_has_larger_relative_variance_than_jrockit(self):
        # Figure 1(a): HotSpot's concurrent GC spreads wider.  The
        # channel is bimodal, so judge on a decent sample at the
        # paper's measurement length.
        seeds = range(8)
        jrockit = summarize(throughputs(
            SpecJBB(warehouses=8, vm="jrockit", gc=GCKind.CONCURRENT),
            "2f-2s/8", seeds=seeds))
        hotspot = summarize(throughputs(
            SpecJBB(warehouses=8, vm="hotspot", gc=GCKind.CONCURRENT),
            "2f-2s/8", seeds=seeds))
        assert hotspot.cov > jrockit.cov

    def test_gc_stalls_absent_on_all_fast_machine_at_low_load(self):
        workload = quick(warehouses=2)
        result = workload.run_once("4f-0s", seed=3)
        assert result.metric("gc_stalls") == 0
