"""CLI entry point and cross-module integration tests."""

import pytest

from repro.__main__ import main as cli_main
from repro.workloads import SpecJBB, TpchPowerRun
from repro.workloads.webserver.client import ClosedLoopClient, Request
from repro._system import System


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig01" in out and "table1" in out

    def test_validate(self, capsys):
        assert cli_main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "8.00" in out  # the 1/8 duty-cycle slowdown

    def test_unknown_exhibit(self, capsys):
        assert cli_main(["fig99"]) == 2

    def test_single_exhibit_runs(self, capsys):
        assert cli_main(["fig09"]) == 0
        out = capsys.readouterr().out
        assert "PMAKE" in out

    def test_bad_profile_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["fig09", "--profile", "huge"])


class TestClientEdgeCases:
    def test_zero_concurrency_rejected(self):
        system = System.build("4f-0s")

        class NullServer:
            def submit(self, request):
                request.finish_time = system.now
                request.on_done(request)

        with pytest.raises(ValueError):
            ClosedLoopClient(system, NullServer(), 0)

    def test_measurement_window_bounds_counting(self):
        system = System.build("4f-0s")
        served = []

        class EchoServer:
            def submit(self, request):
                # Serve instantly after 1ms simulated latency.
                def done():
                    request.finish_time = system.now
                    served.append(request)
                    request.on_done(request)
                system.sim.schedule(0.001, done)

        client = ClosedLoopClient(system, EchoServer(), 2,
                                  network_delay=0.001)
        client.start()
        client.measure(warmup=0.1, duration=0.5)
        system.run(until=0.7)
        # Requests completed, but only those inside [0.1, 0.6] counted.
        assert 0 < client.measured_count < len(served)
        assert client.throughput(0.5) == client.measured_count / 0.5

    def test_request_response_time(self):
        request = Request(0, 1.0, lambda r: None)
        assert request.response_time is None
        request.finish_time = 1.5
        assert request.response_time == pytest.approx(0.5)


class TestCrossWorkloadIntegration:
    def test_workloads_share_no_state_between_runs(self):
        # Running one workload must not perturb another's results.
        jbb = SpecJBB(warehouses=4, measurement_seconds=0.5)
        baseline = jbb.run_once("2f-2s/8", seed=9).metric("throughput")
        TpchPowerRun(4, 7, queries=[1]).run_once("2f-2s/8", seed=9)
        again = jbb.run_once("2f-2s/8", seed=9).metric("throughput")
        assert again == baseline

    def test_run_result_metric_error_message(self):
        result = TpchPowerRun(4, 7, queries=[1]).run_once("4f-0s")
        with pytest.raises(KeyError, match="no metric"):
            result.metric("latency")

    def test_primary_metrics_declared(self):
        from repro.workloads import (
            ApacheWorkload, H264Encoder, Pmake, SpecJAppServer,
            ZeusWorkload,
        )
        throughput_kind = (SpecJBB(warehouses=1), SpecJAppServer(),
                           ApacheWorkload(), ZeusWorkload())
        runtime_kind = (TpchPowerRun(), H264Encoder(), Pmake())
        assert all(w.higher_is_better for w in throughput_kind)
        assert not any(w.higher_is_better for w in runtime_kind)
