"""Tests for the fault-injection subsystem (:mod:`repro.faults`).

The contract under test: a :class:`FaultSchedule` is an ordinary,
deterministic part of a run's identity.  Faults re-split in-flight
slices, migrate work off dying cores and stall running threads —
without ever losing a cycle (the conservation invariants hold
mid-storm) and without breaking the byte-identical-replay guarantee,
serial and process-pool alike.
"""

import json

import pytest

from repro import System
from repro.errors import (
    ConfigurationError,
    SchedulingError,
    SimulationError,
)
from repro.experiments.parallel import (
    ProcessPoolBackend,
    RunTask,
    SerialBackend,
    task_fingerprint,
)
from repro.faults import (
    CoreOfflineEvent,
    CoreOnlineEvent,
    FaultInjector,
    FaultSchedule,
    StallEvent,
    ThrottleEvent,
    clear_default_schedule,
    default_schedule,
    event_from_dict,
    install_default_payload,
    install_default_schedule,
)
from repro.kernel import AsymmetryAwareScheduler, Compute, SimThread
from repro.machine.duty_cycle import SUPPORTED_DUTY_CYCLES, throttle_steps
from repro.workloads.specjbb import SpecJBB

from tests.harness import assert_conservation, golden_fault_schedule


def _compute_body(cycles):
    yield Compute(cycles)


def _spawn_compute(system, cycles_list):
    threads = []
    for index, cycles in enumerate(cycles_list):
        thread = SimThread(f"t{index}", _compute_body(cycles))
        system.kernel.spawn(thread)
        threads.append(thread)
    return threads


def _faulted_run(schedule, config="2f-2s/8", seed=5,
                 cycles=(5e8, 3e8, 2e8, 1.2e8, 0.9e8),
                 scheduler=None):
    system = System.build(config, seed=seed, scheduler=scheduler)
    injector = schedule.install(system) if schedule is not None \
        else None
    threads = _spawn_compute(system, cycles)
    system.run()
    return system, injector, threads


class TestScheduleConstruction:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule([
            StallEvent(0.3, 0, 0.01),
            ThrottleEvent(0.1, 1, 0.5),
            CoreOfflineEvent(0.2, 2),
        ])
        assert [event.time for event in schedule] == [0.1, 0.2, 0.3]

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule([ThrottleEvent(-0.1, 0, 0.5)])

    def test_negative_core_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule([CoreOfflineEvent(0.1, -1)])

    @pytest.mark.parametrize("duty", [0.0, -0.5, 1.5])
    def test_bad_duty_cycle_rejected(self, duty):
        with pytest.raises(ConfigurationError):
            FaultSchedule([ThrottleEvent(0.1, 0, duty)])

    def test_nonpositive_durations_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule([ThrottleEvent(0.1, 0, 0.5, duration=0.0)])
        with pytest.raises(ConfigurationError):
            FaultSchedule([StallEvent(0.1, 0, -0.01)])

    def test_counts_by_kind(self):
        assert golden_fault_schedule().counts() == {
            "throttle": 2, "offline": 1, "online": 1, "stall": 1}

    def test_validate_rejects_out_of_range_core(self):
        schedule = FaultSchedule([ThrottleEvent(0.1, 7, 0.5)])
        with pytest.raises(ConfigurationError,
                           match="targets core 7"):
            schedule.validate(n_cores=4)

    def test_validate_rejects_stranding_the_machine(self):
        schedule = FaultSchedule(
            [CoreOfflineEvent(0.1 * i, i) for i in range(4)])
        with pytest.raises(ConfigurationError,
                           match="at least one core"):
            schedule.validate(n_cores=4)

    def test_validate_honors_interleaved_online(self):
        schedule = FaultSchedule([
            CoreOfflineEvent(0.1, 0),
            CoreOfflineEvent(0.2, 1),
            CoreOnlineEvent(0.3, 0),
            CoreOfflineEvent(0.4, 2),
            CoreOfflineEvent(0.5, 3),
        ])
        schedule.validate(n_cores=4)  # core 0 back before 3 goes down

    def test_install_validates_against_machine(self):
        system = System.build("4f-0s", seed=1)
        with pytest.raises(ConfigurationError):
            FaultSchedule([StallEvent(0.1, 9, 0.01)]).install(system)


class TestSerialization:
    def test_event_dict_round_trip(self):
        for event in golden_fault_schedule():
            assert event_from_dict(event.as_dict()) == event

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            event_from_dict({"kind": "meteor", "time": 0.1, "core": 0})

    def test_malformed_event_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            event_from_dict({"kind": "stall", "time": 0.1})

    def test_schedule_json_round_trip_is_byte_stable(self):
        schedule = golden_fault_schedule()
        text = schedule.to_json()
        assert FaultSchedule.from_json(text).to_json() == text
        data = json.loads(text)
        assert data["seed"] == 0
        assert data["label"] == "golden-fault-mix"

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "schedule.json"
        schedule = golden_fault_schedule()
        schedule.save(str(path))
        loaded = FaultSchedule.load(str(path))
        assert loaded.to_json() == schedule.to_json()


class TestThrottleStorm:
    def test_same_seed_same_storm(self):
        make = lambda: FaultSchedule.throttle_storm(  # noqa: E731
            seed=7, duration=1.0, cores=range(4))
        assert make().to_json() == make().to_json()

    def test_different_seed_different_storm(self):
        a = FaultSchedule.throttle_storm(seed=1, duration=1.0,
                                         cores=range(4))
        b = FaultSchedule.throttle_storm(seed=2, duration=1.0,
                                         cores=range(4))
        assert a.to_json() != b.to_json()

    def test_storm_events_are_well_formed(self):
        storm = FaultSchedule.throttle_storm(seed=3, duration=0.5,
                                             cores=[1, 2])
        assert len(storm) > 0
        steps = set(throttle_steps())
        for event in storm:
            assert isinstance(event, ThrottleEvent)
            assert 0.0 < event.time < 0.5
            assert event.core in (1, 2)
            assert event.duty_cycle in steps
            assert event.duration > 0.0

    def test_permanent_fraction_one_means_no_recovery(self):
        storm = FaultSchedule.throttle_storm(
            seed=3, duration=0.5, cores=[0], permanent_fraction=1.0)
        assert all(event.duration is None for event in storm)

    @pytest.mark.parametrize("kwargs", [
        {"duration": 0.0}, {"events_per_second": 0.0}, {"cores": []},
    ])
    def test_invalid_storm_parameters_rejected(self, kwargs):
        base = {"seed": 1, "duration": 1.0, "cores": [0],
                "events_per_second": 10.0}
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            FaultSchedule.throttle_storm(**base)


class TestThrottleInjection:
    def test_throttle_preserves_conservation(self):
        schedule = FaultSchedule([
            ThrottleEvent(0.02, 0, 0.25, duration=0.05),
            ThrottleEvent(0.03, 1, 0.125),
        ])
        system, injector, threads = _faulted_run(schedule)
        assert_conservation(system.run_metrics())
        assert injector.applied == 2
        assert all(t.cycles_retired > 0 for t in threads)

    def test_throttle_and_recovery_counters(self):
        schedule = FaultSchedule([
            ThrottleEvent(0.02, 0, 0.25, duration=0.05),
            ThrottleEvent(0.03, 1, 0.125),
        ])
        system, _, _ = _faulted_run(schedule)
        counters = system.run_metrics().counters
        assert counters["faults.throttle"] == 2
        assert counters["faults.recovery"] == 1

    def test_time_at_speed_books_split_by_duty(self):
        # Permanent throttle of core 0 at t=0.05: its books must show
        # both the full-speed and the throttled interval, summing to
        # the run's duration (the conservation checker enforces the
        # sum; here we check the split itself).
        schedule = FaultSchedule([ThrottleEvent(0.05, 0, 0.25)])
        system, _, _ = _faulted_run(schedule)
        metrics = system.run_metrics()
        books = metrics.cores[0].time_at_speed
        assert set(books) == {"1", "0.25"}
        assert books["1"] == pytest.approx(0.05)
        assert sum(books.values()) == pytest.approx(metrics.duration)

    def test_reprogram_snaps_to_supported_step(self):
        system = System.build("4f-0s", seed=1)
        core = system.machine.cores[0]
        snapped = system.kernel.reprogram_core(core, 0.3)
        assert snapped in SUPPORTED_DUTY_CYCLES
        assert core.duty_cycle == snapped

    def test_throttled_run_is_slower(self):
        clean, _, _ = _faulted_run(None, config="4f-0s",
                                   cycles=(5e8, 5e8, 5e8, 5e8))
        schedule = FaultSchedule(
            [ThrottleEvent(0.01, core, 0.125) for core in range(4)])
        stormy, _, _ = _faulted_run(schedule, config="4f-0s",
                                    cycles=(5e8, 5e8, 5e8, 5e8))
        assert stormy.sim.now > clean.sim.now


class TestOfflineInjection:
    def test_offline_migrates_work_and_run_completes(self):
        schedule = FaultSchedule([CoreOfflineEvent(0.02, 0)])
        system, _, threads = _faulted_run(schedule)
        assert_conservation(system.run_metrics())
        core = system.machine.cores[0]
        assert not core.online
        assert core.current_thread is None
        assert all(t.cycles_retired > 0 for t in threads)
        counters = system.run_metrics().counters
        assert counters["faults.offline"] == 1
        assert counters["faults.offline_migrations"] >= 1

    def test_offline_core_stops_accumulating_busy_time(self):
        schedule = FaultSchedule([CoreOfflineEvent(0.02, 0)])
        system, _, _ = _faulted_run(schedule)
        metrics = system.run_metrics()
        core = metrics.cores[0]
        assert core.busy_seconds <= 0.02 + 1e-9
        assert core.busy_seconds + core.idle_seconds == \
            pytest.approx(metrics.duration)

    def test_online_brings_core_back(self):
        schedule = FaultSchedule([
            CoreOfflineEvent(0.02, 0),
            CoreOnlineEvent(0.06, 0),
        ])
        system, _, _ = _faulted_run(schedule)
        assert_conservation(system.run_metrics())
        assert system.machine.cores[0].online
        counters = system.run_metrics().counters
        assert counters["faults.online"] == 1

    def test_offline_and_online_are_idempotent(self):
        system = System.build("4f-0s", seed=1)
        core = system.machine.cores[0]
        system.kernel.set_core_offline(core)
        system.kernel.set_core_offline(core)  # no-op, no error
        assert not core.online
        system.kernel.set_core_online(core)
        system.kernel.set_core_online(core)
        assert core.online

    def test_last_online_core_refuses_to_die(self):
        system = System.build("4f-0s", seed=1)
        cores = system.machine.cores
        for core in cores[:-1]:
            system.kernel.set_core_offline(core)
        with pytest.raises(SchedulingError,
                           match="last online core"):
            system.kernel.set_core_offline(cores[-1])


class TestStallInjection:
    def test_stall_preserves_remaining_cycles(self):
        # Stall every core at t=0.02: exactly the cores with a running
        # thread stall, the rest are counted as skipped, and every
        # yielded cycle still retires exactly once.
        cycles = (4e8, 3e8)
        schedule = FaultSchedule(
            [StallEvent(0.02, core, 0.03) for core in range(4)])
        system, _, threads = _faulted_run(schedule, cycles=cycles)
        assert_conservation(system.run_metrics())
        for thread, expected in zip(threads, cycles):
            assert thread.cycles_retired == pytest.approx(expected,
                                                          abs=2.0)
        counters = system.run_metrics().counters
        assert counters["faults.stall"] == 2
        assert counters["faults.stall_skipped"] == 2

    def test_stall_extends_the_run(self):
        clean, _, _ = _faulted_run(None, config="4f-0s",
                                   cycles=(4e8,))
        schedule = FaultSchedule(
            [StallEvent(0.01, core, 0.5) for core in range(4)])
        stalled, _, _ = _faulted_run(schedule, config="4f-0s",
                                     cycles=(4e8,))
        assert stalled.sim.now > clean.sim.now + 0.4

    def test_stall_on_idle_core_is_skipped(self):
        system = System.build("4f-0s", seed=1)
        assert not system.kernel.stall_current(
            system.machine.cores[0], 0.01)

    def test_nonpositive_stall_rejected_by_kernel(self):
        system = System.build("4f-0s", seed=1)
        with pytest.raises(SimulationError):
            system.kernel.stall_current(system.machine.cores[0], 0.0)


class TestDeterminism:
    def test_identical_schedule_and_seed_byte_identical_metrics(self):
        runs = [_faulted_run(golden_fault_schedule())[0]
                for _ in range(2)]
        first, second = (run.run_metrics().to_json() for run in runs)
        assert first == second

    def test_faulted_workload_replays_byte_identically(self):
        storm = FaultSchedule.throttle_storm(seed=9, duration=0.4,
                                             cores=range(4))

        def run():
            workload = SpecJBB(warehouses=2, measurement_seconds=0.3,
                               warmup_seconds=0.1).with_faults(storm)
            return workload.run_once("2f-2s/8", seed=42)

        assert run().run_metrics.to_json() == \
            run().run_metrics.to_json()

    def test_faults_change_the_metrics(self):
        clean, _, _ = _faulted_run(None)
        stormy, _, _ = _faulted_run(golden_fault_schedule())
        assert clean.run_metrics().to_json() != \
            stormy.run_metrics().to_json()


class TestParallelByteIdentity:
    @staticmethod
    def _tasks():
        storm = FaultSchedule.throttle_storm(seed=11, duration=0.4,
                                             cores=range(4))
        return [
            RunTask(SpecJBB(warehouses=2, measurement_seconds=0.3,
                            warmup_seconds=0.1).with_faults(storm),
                    config, seed,
                    scheduler_factory=factory)
            for config in ("2f-2s/8", "1f-3s/8")
            for seed in (42, 43)
            for factory in (None, AsymmetryAwareScheduler)
        ]

    def test_faulted_sweep_serial_vs_pool_byte_identical(self):
        serial = SerialBackend().execute(self._tasks())
        pooled = ProcessPoolBackend(jobs=4).execute(self._tasks())
        assert [r.run_metrics.to_json() for r in serial] == \
            [r.run_metrics.to_json() for r in pooled]

    def test_default_schedule_reaches_worker_processes(self):
        # The CLI's --faults flag installs a process-wide default;
        # worker processes must see it or parallel runs diverge.
        tasks = [RunTask(SpecJBB(warehouses=2,
                                 measurement_seconds=0.3,
                                 warmup_seconds=0.1),
                         "2f-2s/8", seed)
                 for seed in (42, 43)]
        install_default_schedule(golden_fault_schedule())
        try:
            serial = SerialBackend().execute(tasks)
            pooled = ProcessPoolBackend(jobs=2).execute(tasks)
        finally:
            clear_default_schedule()
        clean = SerialBackend().execute(tasks)
        assert [r.run_metrics.to_json() for r in serial] == \
            [r.run_metrics.to_json() for r in pooled]
        assert serial[0].run_metrics.to_json() != \
            clean[0].run_metrics.to_json()

    def test_default_schedule_is_part_of_the_fingerprint(self):
        task = RunTask(SpecJBB(warehouses=2), "2f-2s/8", 42)
        bare = task_fingerprint(task)
        install_default_schedule(golden_fault_schedule())
        try:
            faulted = task_fingerprint(task)
        finally:
            clear_default_schedule()
        assert bare != faulted
        assert task_fingerprint(task) == bare

    def test_payload_round_trip(self):
        install_default_schedule(golden_fault_schedule())
        try:
            from repro.faults import default_schedule_payload
            payload = default_schedule_payload()
        finally:
            clear_default_schedule()
        assert default_schedule() is None
        install_default_payload(payload)
        try:
            restored = default_schedule()
            assert restored is not None
            assert restored.to_json() == \
                golden_fault_schedule().to_json()
        finally:
            install_default_payload(None)
        assert default_schedule() is None


class TestCli:
    def test_faults_flag_installs_and_clears_schedule(self, tmp_path,
                                                      capsys):
        from repro.__main__ import main as cli_main
        path = tmp_path / "storm.json"
        golden_fault_schedule().save(str(path))
        assert cli_main(["fig09", "--faults", str(path)]) == 0
        out = capsys.readouterr().out
        assert "fault schedule: 5 events" in out
        assert default_schedule() is None  # cleared afterwards

    def test_injector_repr_and_applied_counter(self):
        system = System.build("2f-2s/8", seed=5)
        injector = golden_fault_schedule().install(system)
        assert isinstance(injector, FaultInjector)
        assert injector.applied == 0
        _spawn_compute(system, (5e8, 3e8, 2e8))
        system.run()
        assert injector.applied == 5
