#!/usr/bin/env python
"""Validate generated performance reports with only the stdlib.

CI's perf-report job generates ``report_<workload>.{md,json}`` files
and runs this checker over them, so a malformed report (a section a
reader would find empty, inconsistent or non-finite) fails the build
instead of shipping as an artifact::

    python tools/check_report_schema.py report.json [report.md ...]

JSON files are checked structurally:

* top level carries the known ``format``, workload identity, configs,
  a seed panel, and the throughput/deltas/usl/variability sections;
* every statistic is a finite number; CoV and spread are >= 0;
* each USL table row satisfies ``measured - predicted == residual``
  (to float tolerance) and covers every config of the sweep;
* the optional service section's censuses and latency entries are
  well-formed.

Markdown files are checked for the reader-facing section headings.
Exit status: 0 when every file passes, 1 otherwise.
"""

from __future__ import annotations

import json
import math
import sys
from typing import Any, Dict, List, Tuple

REPORT_FORMAT = 1

REQUIRED_SECTIONS = ("format", "workload", "primary_metric",
                     "higher_is_better", "configs", "seed_panel",
                     "throughput", "deltas", "usl", "variability")

SUMMARY_FIELDS = ("runs", "mean", "std", "min", "max", "cov",
                  "spread")

USL_ROW_FIELDS = ("config", "x", "measured", "predicted", "residual",
                  "relative_residual")

MARKDOWN_HEADINGS = ("# Performance report — ",
                     "## Throughput",
                     "## Asymmetric vs. stock scheduler",
                     "## Theoretical vs. measured scaling (USL)",
                     "## Run-to-run variability")


def _is_number(value: Any) -> bool:
    return (isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value))


def _check_summary(entry: Any, where: str,
                   errors: List[str]) -> None:
    if not isinstance(entry, dict):
        errors.append(f"{where}: not an object")
        return
    for name in SUMMARY_FIELDS:
        if name == "runs":
            if not isinstance(entry.get(name), int) \
                    or entry.get(name) < 1:
                errors.append(f"{where}.runs: must be a positive "
                              "integer")
        elif not _is_number(entry.get(name)):
            errors.append(f"{where}.{name}: must be a finite number")
    if _is_number(entry.get("cov")) and entry["cov"] < 0:
        errors.append(f"{where}.cov: must be >= 0")
    if _is_number(entry.get("spread")) and entry["spread"] < 0:
        errors.append(f"{where}.spread: must be >= 0")


def _check_usl(section: Any, configs: List[str], where: str,
               errors: List[str]) -> None:
    if not isinstance(section, dict):
        errors.append(f"{where}: not an object")
        return
    if "error" in section:
        if not isinstance(section["error"], str):
            errors.append(f"{where}.error: must be a string")
        return
    fit = section.get("fit")
    if not isinstance(fit, dict):
        errors.append(f"{where}.fit: missing")
    else:
        for name in ("gamma", "sigma", "kappa", "r_squared"):
            if not _is_number(fit.get(name)):
                errors.append(f"{where}.fit.{name}: must be a finite "
                              "number")
    table = section.get("table")
    if not isinstance(table, list) or not table:
        errors.append(f"{where}.table: must be a non-empty list")
        return
    covered = []
    for index, row in enumerate(table):
        row_where = f"{where}.table[{index}]"
        if not isinstance(row, dict):
            errors.append(f"{row_where}: not an object")
            continue
        for name in USL_ROW_FIELDS:
            if name == "config":
                if not isinstance(row.get(name), str):
                    errors.append(f"{row_where}.config: must be a "
                                  "string")
            elif not _is_number(row.get(name)):
                errors.append(f"{row_where}.{name}: must be a finite "
                              "number")
        covered.append(row.get("config"))
        if all(_is_number(row.get(name))
               for name in ("measured", "predicted", "residual")):
            gap = row["measured"] - row["predicted"] - row["residual"]
            scale = max(1.0, abs(row["measured"]))
            if abs(gap) > 1e-6 * scale:
                errors.append(
                    f"{row_where}: residual inconsistent "
                    f"(measured - predicted - residual = {gap:g})")
    missing = [label for label in configs if label not in covered]
    if missing:
        errors.append(f"{where}.table: configs without a row: "
                      f"{missing}")


def _check_service(section: Any, where: str,
                   errors: List[str]) -> None:
    if not isinstance(section, dict):
        errors.append(f"{where}: not an object")
        return
    if not isinstance(section.get("records"), int):
        errors.append(f"{where}.records: must be an integer")
    for census in ("by_request", "by_outcome"):
        table = section.get(census)
        if not isinstance(table, dict) or not all(
                isinstance(count, int) and count >= 0
                for count in table.values()):
            errors.append(f"{where}.{census}: must map names to "
                          "non-negative integers")
    latency = section.get("latency")
    if not isinstance(latency, dict):
        errors.append(f"{where}.latency: missing")
        return
    for name, entry in latency.items():
        entry_where = f"{where}.latency.{name}"
        if not isinstance(entry, dict):
            errors.append(f"{entry_where}: not an object")
            continue
        if not isinstance(entry.get("count"), int):
            errors.append(f"{entry_where}.count: must be an integer")
        for field in ("mean_seconds", "p50_seconds", "p95_seconds",
                      "p99_seconds"):
            if not _is_number(entry.get(field)) or entry[field] < 0:
                errors.append(f"{entry_where}.{field}: must be a "
                              "finite number >= 0")


def check_report(report: Any) -> Tuple[List[str], Dict[str, int]]:
    """All schema violations plus a per-section presence census."""
    errors: List[str] = []
    census: Dict[str, int] = {}
    if not isinstance(report, dict):
        return ["top level: not a JSON object"], census
    for name in REQUIRED_SECTIONS:
        if name not in report:
            errors.append(f"top level: missing section {name!r}")
    if errors:
        return errors, census
    census = {name: 1 for name in report}
    if report["format"] != REPORT_FORMAT:
        errors.append(f"format: expected {REPORT_FORMAT}, "
                      f"got {report['format']!r}")
    configs = report["configs"]
    if not isinstance(configs, list) or not configs:
        errors.append("configs: must be a non-empty list")
        configs = []
    seeds = report["seed_panel"].get("seeds") \
        if isinstance(report["seed_panel"], dict) else None
    if not isinstance(seeds, list) or not seeds:
        errors.append("seed_panel.seeds: must be a non-empty list")
    for scheduler in ("stock", "asym"):
        table = report["throughput"].get(scheduler) \
            if isinstance(report["throughput"], dict) else None
        if not isinstance(table, dict):
            errors.append(f"throughput.{scheduler}: missing")
            continue
        for label in configs:
            if label not in table:
                errors.append(f"throughput.{scheduler}: no entry "
                              f"for {label!r}")
            else:
                _check_summary(table[label],
                               f"throughput.{scheduler}.{label}",
                               errors)
        _check_usl(report["usl"].get(scheduler), configs,
                   f"usl.{scheduler}", errors)
    deltas = report["deltas"]
    if isinstance(deltas, dict):
        for label in configs:
            entry = deltas.get(label)
            if not isinstance(entry, dict) or not all(
                    _is_number(entry.get(name))
                    for name in ("stock", "asym", "speedup")):
                errors.append(f"deltas.{label}: needs finite "
                              "stock/asym/speedup numbers")
            elif entry["speedup"] <= 0:
                errors.append(f"deltas.{label}.speedup: must be > 0")
    else:
        errors.append("deltas: not an object")
    variability = report["variability"]
    if isinstance(variability, dict):
        per_config = variability.get("per_config")
        if not isinstance(per_config, dict):
            errors.append("variability.per_config: missing")
        else:
            for label in configs:
                entry = per_config.get(label)
                if not isinstance(entry, dict):
                    errors.append(f"variability.per_config.{label}: "
                                  "missing")
                    continue
                for scheduler in ("stock", "asym"):
                    _check_summary(
                        entry.get(scheduler),
                        f"variability.per_config.{label}.{scheduler}",
                        errors)
    else:
        errors.append("variability: not an object")
    if "service" in report:
        _check_service(report["service"], "service", errors)
    return errors, census


def check_markdown(text: str) -> List[str]:
    """Reader-facing headings a rendered report must carry."""
    return [f"missing heading {heading!r}"
            for heading in MARKDOWN_HEADINGS if heading not in text]


def check_file(path: str) -> bool:
    if path.endswith(".md"):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                text = handle.read()
        except OSError as exc:
            print(f"{path}: unreadable: {exc}")
            return False
        errors = check_markdown(text)
        if errors:
            for error in errors:
                print(f"{path}: {error}")
            print(f"{path}: FAIL ({len(errors)} violations)")
            return False
        print(f"{path}: ok ({len(text.splitlines())} lines)")
        return True
    try:
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"{path}: unreadable: {exc}")
        return False
    errors, census = check_report(report)
    if errors:
        for error in errors[:20]:
            print(f"{path}: {error}")
        if len(errors) > 20:
            print(f"{path}: ... and {len(errors) - 20} more")
        print(f"{path}: FAIL ({len(errors)} violations)")
        return False
    shape = ", ".join(sorted(census))
    print(f"{path}: ok (sections: {shape})")
    return True


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[0])
        print(f"usage: {sys.argv[0]} REPORT.json [REPORT.md ...]")
        return 2
    return 0 if all([check_file(path) for path in argv]) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
