#!/usr/bin/env python
"""Render per-workload performance reports (markdown + JSON).

Thin launcher for :mod:`repro.analysis.perf_report` that works from a
repository checkout without installing the package::

    python tools/perf_report.py --workload specjbb --out-dir reports
    python tools/perf_report.py --workload tpch \
        --stock-results tpch-stock.json --asym-results tpch-asym.json \
        --ledger ledger.jsonl --bench benchmarks/results/BENCH_engine.json \
        --bench-baseline benchmarks/results/BENCH_baseline.json \
        --golden-dir tests/golden --out-dir reports

Generation is deterministic: the same sweeps, ledger file and bench
files produce byte-identical reports (CI generates twice and cmp-s).
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.perf_report import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
