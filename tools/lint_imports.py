#!/usr/bin/env python
"""Detect unused imports (pyflakes F401) with only the stdlib.

The CI lint job runs ruff, which is not available in every dev
container; this tool re-implements the highest-value check so it can
run anywhere the test suite runs::

    python tools/lint_imports.py          # audit src, tests, ...
    python tools/lint_imports.py PATH...  # audit specific trees

An import is "used" when its bound name appears in any non-import
expression of the module.  Mirrors ruff's allowances: ``__all__``
entries, ``import x as x`` re-exports, ``# noqa`` lines, and every
import in an ``__init__.py`` (package re-export surface) are exempt.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

DEFAULT_TREES = ("src", "tests", "benchmarks", "tools")


def bound_name(alias: ast.alias) -> str:
    """The local name an import alias binds (``a.b`` binds ``a``)."""
    if alias.asname is not None:
        return alias.asname
    return alias.name.split(".")[0]


def exported_names(tree: ast.Module) -> set[str]:
    """String entries of every top-level ``__all__`` assignment."""
    names: set[str] = set()
    for node in tree.body:
        if not isinstance(node, (ast.Assign, ast.AugAssign)):
            continue
        targets = getattr(node, "targets", None) or [node.target]
        if not any(isinstance(t, ast.Name) and t.id == "__all__" for t in targets):
            continue
        for constant in ast.walk(node.value):
            if isinstance(constant, ast.Constant):
                if isinstance(constant.value, str):
                    names.add(constant.value)
    return names


def used_names(tree: ast.Module) -> set[str]:
    """Every identifier the module reads outside import statements.

    String constants that parse as expressions contribute their names
    too, so quoted forward references (``Optional["SimThread"]``) count
    as uses — matching ruff's handling of ``TYPE_CHECKING`` imports.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if not node.value.isidentifier() and "[" not in node.value:
                continue
            try:
                quoted = ast.parse(node.value, mode="eval")
            except SyntaxError:
                continue
            for inner in ast.walk(quoted):
                if isinstance(inner, ast.Name):
                    names.add(inner.id)
    return names


def unused_imports(path: Path) -> list[tuple[int, str]]:
    """``(line, name)`` pairs for imports the module never reads."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    lines = source.splitlines()
    used = used_names(tree)
    exported = exported_names(tree)
    findings: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if "noqa" in lines[node.lineno - 1]:
            continue
        if isinstance(node, ast.ImportFrom) and node.module == "__future__":
            continue
        for alias in node.names:
            if alias.name == "*":
                continue
            name = bound_name(alias)
            if alias.asname is not None and alias.asname == alias.name:
                continue  # explicit `import x as x` re-export
            if name in used or name in exported:
                continue
            findings.append((node.lineno, name))
    return findings


def audit(trees: list[str]) -> int:
    failures = 0
    for tree in trees:
        root = Path(tree)
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            if path.name == "__init__.py":
                continue  # package re-export surface
            for line, name in unused_imports(path):
                print(f"{path}:{line}: unused import {name!r}")
                failures += 1
    return failures


def main(argv: list[str] | None = None) -> int:
    trees = list(argv if argv is not None else sys.argv[1:])
    if not trees:
        trees = [tree for tree in DEFAULT_TREES if Path(tree).exists()]
    failures = audit(trees)
    if failures:
        print(f"{failures} unused import(s)", file=sys.stderr)
        return 1
    print(f"no unused imports in: {', '.join(trees)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
