#!/usr/bin/env python
"""Compare two exported simulation traces run by run.

When a code change moves a golden trace or shifts a figure, the first
question is *where the timelines diverge* — which slice, on which
core, at what simulated time.  This tool answers it from two
``--trace-out`` files (see :mod:`repro.sim.trace_export`)::

    python tools/trace_diff.py before.trace.json after.trace.json

Runs are matched by ``(workload, config, seed)`` (the ``pid`` numbers
may differ).  For every matched run it reports:

* the **first divergence**: the earliest event index where the two
  runs' event streams differ, with both events printed;
* **per-core busy-time deltas**: total ``exec`` span time per core
  track on each side;
* **per-lock span-count deltas**: how many ``block`` spans each named
  lock (``lock <name>`` spans, see DESIGN.md §11) contributed on each
  side — the first thing to check when a handoff-policy change moves
  a timeline;
* **histogram shifts**: count/mean/p95 movement of each latency
  histogram embedded in the trace's ``otherData`` summary.

Exit status: 0 when every matched run is identical (event streams AND
embedded histograms) and both files contain the same runs, 1
otherwise — a histogram-only divergence fails the comparison even
when the timelines agree.  Stdlib only.
"""

from __future__ import annotations

import json
import math
import sys
from typing import Any, Dict, List, Optional, Tuple

RunKey = Tuple[str, str, int]


def load_trace(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def runs_by_key(trace: Dict[str, Any],
                ) -> Dict[RunKey, List[Dict[str, Any]]]:
    """``otherData`` run summaries keyed by (workload, config, seed).

    A key may recur (e.g. one exhibit sweeping load levels reuses the
    same config and seed), so each key maps to the list of summaries
    in file order; matching pairs the n-th occurrence on each side.
    """
    table: Dict[RunKey, List[Dict[str, Any]]] = {}
    for summary in trace.get("otherData", {}).get("runs", []):
        key = (summary["workload"], summary["config"], summary["seed"])
        table.setdefault(key, []).append(summary)
    return table


def run_events(trace: Dict[str, Any], pid: int) -> List[Dict[str, Any]]:
    """One run's events in file order, with ``pid`` masked out so
    streams compare equal across files that numbered runs differently."""
    events = []
    for event in trace.get("traceEvents", []):
        if event.get("pid") != pid:
            continue
        masked = dict(event)
        masked.pop("pid", None)
        events.append(masked)
    return events


def describe(event: Optional[Dict[str, Any]]) -> str:
    if event is None:
        return "(stream ended)"
    phase = event.get("ph")
    name = event.get("name", "")
    ts = event.get("ts")
    where = f"tid={event.get('tid')}" if "tid" in event else "process"
    text = f"ph={phase} {name!r} {where}"
    if ts is not None:
        text += f" ts={ts / 1e6:.6f}s"
    if phase == "X":
        text += f" dur={event.get('dur', 0.0) / 1e6:.6f}s"
    return text


def first_divergence(a: List[Dict[str, Any]], b: List[Dict[str, Any]],
                     ) -> Optional[int]:
    """Index of the first differing event, or None when identical."""
    for index in range(max(len(a), len(b))):
        left = a[index] if index < len(a) else None
        right = b[index] if index < len(b) else None
        if left != right:
            return index
    return None


def core_labels(events: List[Dict[str, Any]]) -> Dict[int, str]:
    """tid -> label for the core tracks (named ``cpuN (...)``)."""
    labels = {}
    for event in events:
        if event.get("ph") == "M" \
                and event.get("name") == "thread_name":
            label = event.get("args", {}).get("name", "")
            if label.startswith("cpu"):
                labels[event["tid"]] = label
    return labels


def core_busy(events: List[Dict[str, Any]]) -> Dict[int, float]:
    """Total exec-span seconds per core tid."""
    busy: Dict[int, float] = {}
    for event in events:
        if event.get("ph") == "X" and event.get("cat") == "exec":
            tid = event.get("tid")
            busy[tid] = busy.get(tid, 0.0) + event.get("dur", 0.0) / 1e6
    return busy


def lock_span_counts(events: List[Dict[str, Any]]) -> Dict[str, int]:
    """Block-span count per named lock (spans named ``lock <name>``)."""
    counts: Dict[str, int] = {}
    for event in events:
        name = event.get("name", "")
        if event.get("ph") == "X" and event.get("cat") == "block" \
                and name.startswith("lock "):
            counts[name] = counts.get(name, 0) + 1
    return counts


# ----------------------------------------------------------------------
# Histogram summaries (same bucket convention as repro.histogram:
# integer keys are binary exponents; bucket e covers (2**(e-1), 2**e]).
# ----------------------------------------------------------------------
def hist_count(data: Dict[str, Any]) -> int:
    return data.get("zeros", 0) + sum(data.get("buckets", {}).values())


def hist_mean(data: Dict[str, Any]) -> float:
    count = hist_count(data)
    return data.get("total", 0.0) / count if count else 0.0


def hist_quantile(data: Dict[str, Any], q: float) -> float:
    count = hist_count(data)
    if count == 0:
        return 0.0
    rank = q * count
    seen = float(data.get("zeros", 0))
    if rank <= seen:
        return 0.0
    buckets = {int(key): value
               for key, value in data.get("buckets", {}).items()}
    for exponent in sorted(buckets):
        seen += buckets[exponent]
        if rank <= seen:
            return math.ldexp(1.0, exponent)
    return math.ldexp(1.0, max(buckets))


def diff_histograms(a: Dict[str, Any], b: Dict[str, Any],
                    indent: str = "    ") -> List[str]:
    lines = []
    for name in sorted(set(a) | set(b)):
        left, right = a.get(name, {}), b.get(name, {})
        if left == right:
            continue
        lines.append(
            f"{indent}{name}: "
            f"count {hist_count(left)} -> {hist_count(right)}, "
            f"mean {hist_mean(left):.3e} -> {hist_mean(right):.3e}, "
            f"p95 {hist_quantile(left, 0.95):.3e} -> "
            f"{hist_quantile(right, 0.95):.3e}")
    return lines


def diff_run(key: RunKey, trace_a: Dict[str, Any],
             trace_b: Dict[str, Any], summary_a: Dict[str, Any],
             summary_b: Dict[str, Any]) -> bool:
    """Print one run's comparison; returns True when identical."""
    events_a = run_events(trace_a, summary_a["pid"])
    events_b = run_events(trace_b, summary_b["pid"])
    workload, config, seed = key
    title = f"{workload} {config} seed={seed}"
    index = first_divergence(events_a, events_b)
    shifts = diff_histograms(summary_a.get("histograms", {}),
                             summary_b.get("histograms", {}))
    if index is None:
        if not shifts:
            return True
        # The timelines agree but the embedded run summaries do not:
        # a histogram-only divergence (e.g. an extra zero-length
        # sample) must fail the comparison, not slip through.
        print(f"== {title}")
        print("  event streams identical but histograms differ:")
        print("\n".join(shifts))
        return False
    print(f"== {title}")
    print(f"  first divergence at event #{index} "
          f"(a has {len(events_a)} events, b has {len(events_b)}):")
    left = events_a[index] if index < len(events_a) else None
    right = events_b[index] if index < len(events_b) else None
    print(f"    a: {describe(left)}")
    print(f"    b: {describe(right)}")
    labels = {**core_labels(events_b), **core_labels(events_a)}
    busy_a, busy_b = core_busy(events_a), core_busy(events_b)
    deltas = [(tid, busy_a.get(tid, 0.0), busy_b.get(tid, 0.0))
              for tid in sorted(set(busy_a) | set(busy_b))]
    if deltas:
        print("  per-core exec busy time (seconds):")
        for tid, left_busy, right_busy in deltas:
            label = labels.get(tid, f"tid {tid}")
            marker = "" if abs(right_busy - left_busy) < 1e-12 \
                else f"  ({right_busy - left_busy:+.6f})"
            print(f"    {label}: {left_busy:.6f} -> "
                  f"{right_busy:.6f}{marker}")
    locks_a, locks_b = lock_span_counts(events_a), \
        lock_span_counts(events_b)
    if locks_a or locks_b:
        print("  per-lock block spans:")
        for name in sorted(set(locks_a) | set(locks_b)):
            left_count = locks_a.get(name, 0)
            right_count = locks_b.get(name, 0)
            marker = "" if left_count == right_count \
                else f"  ({right_count - left_count:+d})"
            print(f"    {name}: {left_count} -> "
                  f"{right_count}{marker}")
    if shifts:
        print("  histogram shifts:")
        print("\n".join(shifts))
    return False


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(f"usage: {sys.argv[0]} A.trace.json B.trace.json")
        return 2
    trace_a, trace_b = load_trace(argv[0]), load_trace(argv[1])
    runs_a, runs_b = runs_by_key(trace_a), runs_by_key(trace_b)
    clean = True
    identical = matched = 0
    for key in sorted(set(runs_a) | set(runs_b)):
        group_a = runs_a.get(key, [])
        group_b = runs_b.get(key, [])
        if len(group_a) != len(group_b):
            print(f"run count differs for {key[0]} {key[1]} "
                  f"seed={key[2]}: a has {len(group_a)}, "
                  f"b has {len(group_b)}")
            clean = False
        for summary_a, summary_b in zip(group_a, group_b):
            matched += 1
            if diff_run(key, trace_a, trace_b, summary_a, summary_b):
                identical += 1
            else:
                clean = False
    print(f"{identical} of {matched} matched runs identical")
    return 0 if clean else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
