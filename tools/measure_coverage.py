#!/usr/bin/env python
"""Stdlib-only line-coverage measurement of ``src/repro``.

CI enforces ``pytest --cov=repro --cov-fail-under=<N>`` with
coverage.py; this tool answers "what is N, roughly?" on machines that
only have the standard library.  It runs the tier-1 suite in-process
under a ``sys.settrace`` hook restricted to ``src/repro`` files
(frames elsewhere opt out of line tracing, keeping the slowdown
tolerable) and reports executed lines / executable lines per module.

The denominator comes from compiling each module and walking its code
objects' ``co_lines`` tables, which is coverage.py's statement notion
to within a percent or two — treat the result as a floor estimate,
and keep the CI threshold a few points below it.

Usage::

    python tools/measure_coverage.py [pytest args...]
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"
PACKAGE = SRC / "repro"
sys.path.insert(0, str(SRC))
sys.path.insert(0, str(ROOT))

_executed: dict = {}


def _trace(frame, event, arg):
    filename = frame.f_code.co_filename
    if not filename.startswith(str(PACKAGE)):
        frame.f_trace_lines = False
        return None
    lines = _executed.setdefault(filename, set())

    def local(frame, event, arg):
        if event == "line":
            lines.add(frame.f_lineno)
        return local

    if event == "line":          # first line of the call itself
        lines.add(frame.f_lineno)
    return local


def _executable_lines(path: Path) -> set:
    source = path.read_text(encoding="utf-8")
    lines: set = set()
    todo = [compile(source, str(path), "exec")]
    while todo:
        code = todo.pop()
        for const in code.co_consts:
            if hasattr(const, "co_lines"):
                todo.append(const)
        for _, _, lineno in code.co_lines():
            if lineno is not None:
                lines.add(lineno)
    return lines


def main(argv) -> int:
    import pytest

    threading.settrace(_trace)
    sys.settrace(_trace)
    try:
        exit_code = pytest.main(["-q", "-p", "no:cacheprovider",
                                 *argv])
    finally:
        sys.settrace(None)
        threading.settrace(None)
    if exit_code != 0:
        print("test run failed; coverage numbers not meaningful",
              file=sys.stderr)
        return int(exit_code)

    total_executable = 0
    total_executed = 0
    rows = []
    for path in sorted(PACKAGE.rglob("*.py")):
        executable = _executable_lines(path)
        executed = _executed.get(str(path), set()) & executable
        total_executable += len(executable)
        total_executed += len(executed)
        percent = (100.0 * len(executed) / len(executable)
                   if executable else 100.0)
        rows.append((percent, path.relative_to(SRC),
                     len(executed), len(executable)))
    print(f"\n{'module':48s} {'lines':>11s} {'cover':>6s}")
    for percent, rel, executed, executable in rows:
        print(f"{str(rel):48s} {executed:5d}/{executable:<5d} "
              f"{percent:5.1f}%")
    overall = 100.0 * total_executed / total_executable
    print(f"\nTOTAL {total_executed}/{total_executable} lines: "
          f"{overall:.1f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
