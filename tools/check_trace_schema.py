#!/usr/bin/env python
"""Validate Chrome trace-event files with only the stdlib.

CI's trace-smoke job exports a timeline with ``--trace-out`` and runs
this checker over it, so a malformed event (one Perfetto would refuse
to load or silently drop) fails the build instead of a demo::

    python tools/check_trace_schema.py TRACE.json [TRACE.json ...]

Checks the subset of the trace-event format the exporter emits:

* the file is a JSON object with a ``traceEvents`` list;
* every event has a known phase ``ph``, an integer ``pid``, and the
  fields that phase requires (``ts``/``dur`` for complete events,
  ``s`` scope for instants, ``id`` for flows, ``args.name`` for
  metadata);
* timestamps and durations are finite and non-negative;
* every flow-finish (``ph: f``) has a matching flow-start (``ph: s``)
  with the same ``(pid, cat, id)``.

Exit status: 0 when every file passes, 1 otherwise.
"""

from __future__ import annotations

import json
import math
import sys
from typing import Any, Dict, List, Tuple

#: Phases the exporter emits (a deliberate subset of the spec).
KNOWN_PHASES = {"M", "X", "i", "s", "f"}
#: Metadata record names Perfetto interprets.
KNOWN_METADATA = {"process_name", "process_labels", "process_sort_index",
                  "thread_name", "thread_sort_index"}
#: Instant-event scopes from the spec.
KNOWN_SCOPES = {"t", "p", "g"}


def _is_time(value: Any) -> bool:
    return (isinstance(value, (int, float))
            and not isinstance(value, bool)
            and math.isfinite(value) and value >= 0.0)


def check_event(event: Any, index: int,
                errors: List[str]) -> None:
    """Append schema violations of one event to ``errors``."""
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        errors.append(f"{where}: not an object")
        return
    phase = event.get("ph")
    if phase not in KNOWN_PHASES:
        errors.append(f"{where}: unknown phase {phase!r}")
        return
    if not isinstance(event.get("pid"), int):
        errors.append(f"{where}: pid must be an integer")
    if phase == "M":
        if event.get("name") not in KNOWN_METADATA:
            errors.append(f"{where}: unknown metadata record "
                          f"{event.get('name')!r}")
        args = event.get("args")
        if not (isinstance(args, dict)
                and isinstance(args.get("name"), str)):
            errors.append(f"{where}: metadata needs args.name string")
        return
    # Every non-metadata phase needs a track and a timestamp.
    if not isinstance(event.get("tid"), int):
        errors.append(f"{where}: tid must be an integer")
    if not _is_time(event.get("ts")):
        errors.append(f"{where}: ts must be a finite number >= 0")
    if not isinstance(event.get("name"), str):
        errors.append(f"{where}: name must be a string")
    if phase == "X" and not _is_time(event.get("dur")):
        errors.append(f"{where}: complete event needs finite dur >= 0")
    if phase == "i" and event.get("s") not in KNOWN_SCOPES:
        errors.append(f"{where}: instant scope must be one of "
                      f"{sorted(KNOWN_SCOPES)}")
    if phase in ("s", "f") and event.get("id") is None:
        errors.append(f"{where}: flow event needs an id")


def check_trace(trace: Any) -> Tuple[List[str], Dict[str, int]]:
    """All schema violations plus a per-phase event census."""
    errors: List[str] = []
    census: Dict[str, int] = {}
    if not isinstance(trace, dict):
        return ["top level: not a JSON object"], census
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["top level: no traceEvents list"], census
    flow_starts = set()
    flow_ends = []
    for index, event in enumerate(events):
        check_event(event, index, errors)
        if isinstance(event, dict):
            phase = event.get("ph")
            census[str(phase)] = census.get(str(phase), 0) + 1
            key = (event.get("pid"), event.get("cat"), event.get("id"))
            if phase == "s":
                flow_starts.add(key)
            elif phase == "f":
                flow_ends.append((index, key))
    for index, key in flow_ends:
        if key not in flow_starts:
            errors.append(f"traceEvents[{index}]: flow finish without "
                          f"a matching start (pid, cat, id)={key}")
    return errors, census


def check_file(path: str) -> bool:
    try:
        with open(path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"{path}: unreadable: {exc}")
        return False
    errors, census = check_trace(trace)
    total = sum(census.values())
    shape = ", ".join(f"{phase}={count}"
                      for phase, count in sorted(census.items()))
    if errors:
        for error in errors[:20]:
            print(f"{path}: {error}")
        if len(errors) > 20:
            print(f"{path}: ... and {len(errors) - 20} more")
        print(f"{path}: FAIL ({len(errors)} violations "
              f"in {total} events)")
        return False
    print(f"{path}: ok ({total} events: {shape})")
    return True


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[0])
        print(f"usage: {sys.argv[0]} TRACE.json [TRACE.json ...]")
        return 2
    return 0 if all([check_file(path) for path in argv]) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
